#include "forcefield/pair_eam.h"

#include <array>
#include <bit>
#include <cmath>
#include <type_traits>

#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/simd.h"

namespace mdbench {

namespace {

/**
 * W-wide CubicSpline::eval over gathered knots: the same clamp /
 * locate / Hermite-basis expressions as the scalar eval, so in the
 * double instantiation each lane is bitwise-identical to a scalar eval
 * at that abscissa (float instantiations evaluate the same expressions
 * over the once-cast float knot mirrors). Out-of-range lanes (the
 * sentinel's huge radius) clamp to the last interval and produce
 * finite garbage that callers mask off.
 */
template <typename T, int W>
inline void
evalSplineSimd(const CubicSpline::ViewT<T> &sp, const Simd<T, W> &x,
               Simd<T, W> &value, Simd<T, W> &derivative)
{
    using D = Simd<T, W>;
    using I = SimdIndex<W>;
    const D nMinus1(static_cast<T>(sp.n - 1));
    D s = (x - D(sp.x0)) / D(sp.dx);
    s = D::min(D::max(s, D(T(0))), nMinus1);
    const I idx =
        I::min(D::truncToIndex(s),
               static_cast<std::uint32_t>(sp.n - 2));
    const D t = s - D::fromIndex(idx);
    const D a = D(T(1)) - t;
    const D yi = D::gather(sp.y, idx);
    const D yi1 = D::gather(sp.y, idx + 1u);
    const D mi = D::gather(sp.m, idx);
    const D mi1 = D::gather(sp.m, idx + 1u);
    const D h2 = D(sp.dx * sp.dx);
    value = a * yi + t * yi1 +
            ((a * a * a - a) * mi + (t * t * t - t) * mi1) * h2 / D(T(6));
    derivative = (yi1 - yi) / D(sp.dx) +
                 ((D(T(3)) * t * t - D(T(1))) * mi1 -
                  (D(T(3)) * a * a - D(T(1))) * mi) *
                     D(sp.dx) / D(T(6));
}

} // namespace

EamTables
EamTables::makeSyntheticCopper(double cutoff, int points)
{
    require(points >= 16, "EAM table needs a reasonable resolution");

    // Copper-like constants: Morse pair term fitted to Cu dimer data and
    // an exponentially decaying density; both smoothly truncated so value
    // and slope vanish at the cutoff.
    const double morseD = 0.3429;   // eV
    const double morseA = 1.3588;   // 1/A
    const double r0 = 2.866;        // A, Cu dimer distance
    const double rhoAmp = 1.0;
    const double rhoBeta = 3.9;

    auto morse = [&](double r) {
        const double e = std::exp(-morseA * (r - r0));
        return morseD * ((1.0 - e) * (1.0 - e) - 1.0);
    };
    auto morseDeriv = [&](double r) {
        const double e = std::exp(-morseA * (r - r0));
        return 2.0 * morseD * morseA * e * (1.0 - e);
    };
    auto density = [&](double r) {
        return rhoAmp * std::exp(-rhoBeta * (r / r0 - 1.0));
    };
    auto densityDeriv = [&](double r) {
        return -rhoBeta / r0 * density(r);
    };

    const double rMin = 1.0; // below this, clamp (never sampled in a solid)
    const double dr = (cutoff - rMin) / (points - 1);
    std::vector<double> phiSamples(points);
    std::vector<double> rhoSamples(points);
    const double phiC = morse(cutoff);
    const double phiD = morseDeriv(cutoff);
    const double rhoC = density(cutoff);
    const double rhoD = densityDeriv(cutoff);
    for (int i = 0; i < points; ++i) {
        const double r = rMin + i * dr;
        phiSamples[i] = morse(r) - phiC - phiD * (r - cutoff);
        rhoSamples[i] = density(r) - rhoC - rhoD * (r - cutoff);
    }

    // Equilibrium host density: 12 fcc nearest neighbors at a/sqrt(2)
    // with a = 3.615 A.
    const double nn = 3.615 / std::sqrt(2.0);
    const double rhoE = 12.0 * (density(nn) - rhoC - rhoD * (nn - cutoff));
    const double embedF0 = 2.3; // eV-scale embedding strength
    const double rhoMax = 3.0 * rhoE;
    const double drho = rhoMax / (points - 1);
    std::vector<double> embedSamples(points);
    for (int i = 0; i < points; ++i) {
        const double rho = i * drho;
        embedSamples[i] = -embedF0 * std::sqrt(rho / rhoE);
    }

    EamTables tables;
    tables.phi = CubicSpline(rMin, dr, std::move(phiSamples));
    tables.rho = CubicSpline(rMin, dr, std::move(rhoSamples));
    tables.embed = CubicSpline(0.0, drho, std::move(embedSamples));
    tables.cutoff = cutoff;
    return tables;
}

PairEAM::PairEAM(EamTables tables) : tables_(std::move(tables))
{
    require(tables_.cutoff > 0.0, "EAM cutoff must be positive");
}

void
PairEAM::compute(Simulation &sim, const NeighborList &list)
{
    // The tier recorded at packing time governs: a knob flip between
    // build and compute must not mismatch the padded geometry.
    switch (list.packTier) {
      case Precision::Mixed:
        return dispatchWidth<PrecisionMixed>(sim, list);
      case Precision::Single:
        return dispatchWidth<PrecisionSingle>(sim, list);
      default:
        return dispatchWidth<PrecisionDouble>(sim, list);
    }
}

template <typename P>
void
PairEAM::dispatchWidth(Simulation &sim, const NeighborList &list)
{
    switch (list.padWidth) {
      case 1: return computeSimdImpl<P, 1>(sim, list);
      case 2: return computeSimdImpl<P, 2>(sim, list);
      case 4: return computeSimdImpl<P, 4>(sim, list);
      case 8: return computeSimdImpl<P, 8>(sim, list);
      case 16: return computeSimdImpl<P, 16>(sim, list);
      default: return computeImpl(sim, list);
    }
}

void
PairEAM::computeImpl(Simulation &sim, const NeighborList &list)
{
    ensure(!list.full, "eam requires a half neighbor list");
    TraceScope trace("pair", "eam");
    counterAdd(Counter::PairComputes);
    counterAdd(Counter::PairInteractions, list.pairCount());
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    const std::size_t nlocal = atoms.nlocal();
    const std::size_t nall = atoms.nall();
    const double cutSq = tables_.cutoff * tables_.cutoff;

    ThreadPool &pool = ThreadPool::global();
    const SliceRange slices(0, nlocal, forceKernelGrain(nlocal));
    std::array<double, SliceRange::kMaxSlices> energySlice{};
    std::array<double, SliceRange::kMaxSlices> virialSlice{};

    // Pass 1: host electron densities. Both sides of every pair go
    // through the reduction scratch (see PairLJCut::compute);
    // runAndReduce folds the per-slice partial sums into rhoBar_ in
    // ascending slice order.
    rhoBar_.assign(nall, 0.0);
    const Vec3 *x = atoms.x.data();
    rhoScratch_.runAndReduce(pool, slices, nall, rhoBar_.data(), [&](
        std::size_t sliceBegin, std::size_t sliceEnd, int, int buffer) {
        auto rho = rhoScratch_.acc(buffer);
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            const Vec3 xi = x[i];
            double rhoI = 0.0;
            const auto [begin, end] = list.range(i);
            for (std::uint32_t k = begin; k < end; ++k) {
                const std::uint32_t j = list.neighbors[k];
                const double r2 = (xi - x[j]).normSq();
                if (r2 >= cutSq)
                    continue;
                const double contribution =
                    tables_.rho.value(std::sqrt(r2));
                rhoI += contribution;
                rho.at(j) += contribution;
            }
            rho.at(i) += rhoI;
        }
    });
    sim.comm->reverseScalar(sim, rhoBar_);

    // Embedding energies and derivatives for owned atoms, then share the
    // derivatives with ghosts for the force pass. Purely per-atom.
    fp_.assign(nall, 0.0);
    pool.run(slices, [&](std::size_t sliceBegin, std::size_t sliceEnd,
                         int s) {
        double embedEnergy = 0.0;
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            double value;
            double deriv;
            tables_.embed.eval(rhoBar_[i], value, deriv);
            embedEnergy += value;
            fp_[i] = deriv;
        }
        energySlice[s] = embedEnergy;
    });
    for (int s = 0; s < slices.count(); ++s)
        energy_ += energySlice[s];
    sim.comm->forwardScalar(sim, fp_);

    // Pass 2: forces from pair term + density-mediated embedding term.
    const double *fp = fp_.data();
    fscratch_.runAndReduce(pool, slices, nall, atoms.f.data(), [&](
        std::size_t sliceBegin, std::size_t sliceEnd, int s, int buffer) {
        auto fw = fscratch_.acc(buffer);
        double energy = 0.0;
        double virial = 0.0;
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            const Vec3 xi = x[i];
            Vec3 fi{};
            const auto [begin, end] = list.range(i);
            for (std::uint32_t k = begin; k < end; ++k) {
                const std::uint32_t j = list.neighbors[k];
                const Vec3 delta = xi - x[j];
                const double r2 = delta.normSq();
                if (r2 >= cutSq)
                    continue;
                const double r = std::sqrt(r2);
                double phiV;
                double phiD;
                tables_.phi.eval(r, phiV, phiD);
                const double rhoD = tables_.rho.derivative(r);
                // -dE/dr along the pair axis.
                const double fScalar = -((fp[i] + fp[j]) * rhoD + phiD);
                const Vec3 fvec = delta * (fScalar / r);
                fi += fvec;
                fw.at(j) -= fvec;
                energy += phiV;
                virial += fScalar * r;
            }
            fw.at(i) += fi;
        }
        energySlice[s] = energy;
        virialSlice[s] = virial;
    });
    for (int s = 0; s < slices.count(); ++s) {
        energy_ += energySlice[s];
        virial_ += virialSlice[s];
    }
}

template <typename P, int W>
void
PairEAM::computeSimdImpl(Simulation &sim, const NeighborList &list)
{
    using real = typename P::real;
    using acc = typename P::acc;
    constexpr bool kDoubleTier = std::is_same_v<real, double>;

    static_assert(sizeof(Vec3) == 3 * sizeof(double));

    ensure(!list.full, "eam requires a half neighbor list");
    TraceScope trace("pair", "eam");
    TraceScope simdTrace("pair", "simd");
    counterAdd(Counter::PairComputes);
    counterAdd(Counter::PairInteractions, list.pairCount());
    // Both radial passes traverse the packed list, so the SIMD lane
    // accounting charges each pair (and each padded slot) twice.
    countSimdLaneUse(list, 2);
    if constexpr (!kDoubleTier)
        counterAdd(Counter::PairFloatComputes);
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    const std::size_t nlocal = atoms.nlocal();
    const std::size_t nall = atoms.nall();
    const double cutSq = tables_.cutoff * tables_.cutoff;

    ThreadPool &pool = ThreadPool::global();
    const SliceRange slices(0, nlocal, forceKernelGrain(nlocal));
    std::array<double, SliceRange::kMaxSlices> energySlice{};
    std::array<double, SliceRange::kMaxSlices> virialSlice{};

    using D = Simd<real, W>;
    using M = SimdMask<real, W>;
    using SpView = CubicSpline::ViewT<real>;

    const std::uint32_t *packed = list.packedNeighbors.data();
    // Spline views in the tier's `real`: float tiers gather the
    // once-cast knot mirrors (spline.h viewF). The embedding table is
    // only evaluated by the double-tier W-wide pass; float tiers keep
    // the per-atom embedding pass in scalar double (see below).
    SpView rhoTab, phiTab;
    [[maybe_unused]] CubicSpline::View embedTab;
    if constexpr (kDoubleTier) {
        rhoTab = tables_.rho.view();
        phiTab = tables_.phi.view();
        embedTab = tables_.embed.view();
    } else {
        rhoTab = tables_.rho.viewF();
        phiTab = tables_.phi.viewF();
    }
    const D cutSqV(static_cast<real>(cutSq));
    const D zero(real(0));
    const D minusOne(real(-1));

    // Stage positions as 4-element records in the tier's `real` type
    // (md/xpack.h) so both radial passes use transpose loads instead
    // of three hardware gathers per group — and float tiers convert
    // each coordinate exactly once per compute. The fourth lane starts
    // 0 and is refilled with F'(rho) before pass 2, folding the fpJ
    // gather into the same transpose.
    const std::size_t nallPad = nall + atoms.npad();
    const real *xpackPtr = xpack<real>().stage(atoms.x.data(), nullptr,
                                               nallPad);

    // Pass 1: host electron densities, W pairs at a time. The masked
    // contribution is an exact zero for rejected and sentinel lanes, so
    // the lane-striped row accumulator matches the scalar rhoI at W = 1
    // and the per-lane scatter skips exactly the lanes the scalar
    // `continue` skips. Densities always accumulate in the double
    // scratch: the row sum and the per-lane scatters widen float-tier
    // contributions at the store.
    rhoBar_.assign(nall, 0.0);
    rhoScratch_.runAndReduce(pool, slices, nall, rhoBar_.data(), [&](
        std::size_t sliceBegin, std::size_t sliceEnd, int, int buffer) {
        auto rho = rhoScratch_.acc(buffer);
        // Lambda-locals so the rho scatters cannot force reloads of
        // anything the inner loop keeps live (see PairLJCut).
        const real *const xpk = xpackPtr;
        const std::uint32_t *const pk = packed;
        const SpView rhoSp = rhoTab;
        const D cutSqL(static_cast<real>(cutSq));
        const D zeroL(real(0));
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            const real *xiRec = xpk + 4 * i;
            const D xiX(xiRec[0]), xiY(xiRec[1]), xiZ(xiRec[2]);
            D rhoI(real(0));
            const auto [begin, end] = list.packedRange(i);
            for (std::uint32_t k = begin; k < end; k += W) {
                D xjX, xjY, xjZ, xjW;
                loadXyzw(xpk, pk + k, xjX, xjY, xjZ, xjW);
                const D dx = xiX - xjX;
                const D dy = xiY - xjY;
                const D dz = xiZ - xjZ;
                // fma association matches the scalar sum bitwise on the
                // generic backend (addition order is commutative).
                const D r2 = D::fma(dz, dz, D::fma(dy, dy, dx * dx));
                const M mask = r2 < cutSqL;
                const int active = mask.bits();
                // All lanes rejected (or pure padding): the masked
                // contribution would be an exact zero everywhere, so
                // skipping the spline eval is bitwise free.
                if (active == 0)
                    continue;
                const D r = D::sqrt(r2);
                D rhoV, rhoD;
                evalSplineSimd<real, W>(rhoSp, r, rhoV, rhoD);
                const D contribution = D::select(mask, rhoV, zeroL);
                rhoI += contribution;
                // Set-bit walk ascending = the scalar ascending-k order.
                alignas(64) real sc[W];
                contribution.storeu(sc);
                for (int rest = active; rest; rest &= rest - 1) {
                    const int l =
                        std::countr_zero(static_cast<unsigned>(rest));
                    rho.at(pk[k + l]) += sc[l];
                }
            }
            rho.at(i) += rhoI.sum();
        }
    });
    sim.comm->reverseScalar(sim, rhoBar_);

    // F-embedding pass over the contiguous owned range: per-atom O(N)
    // work kept in double at every tier (rhoBar_ and fp_ stay double —
    // the tiers' float arithmetic covers the O(N * neighbors) radial
    // passes). The double tier runs it W-wide with a scalar tail
    // (scalar eval is lane-for-lane identical to the gathered eval, so
    // the tail changes nothing but the energy summation order, and at
    // W = 1 there is no tail); float tiers run it scalar. fp_ is
    // oversized by the pad slot so pass 2's sentinel gathers stay in
    // bounds; the pad entry stays 0 and forwardScalar ignores it.
    fp_.assign(nall + atoms.npad(), 0.0);
    pool.run(slices, [&](std::size_t sliceBegin, std::size_t sliceEnd,
                         int s) {
        double embedTail = 0.0;
        std::size_t i = sliceBegin;
        if constexpr (kDoubleTier) {
            D embedAcc(0.0);
            for (; i + W <= sliceEnd; i += W) {
                const D rhoHost = D::loadu(rhoBar_.data() + i);
                D value, deriv;
                evalSplineSimd<double, W>(embedTab, rhoHost, value, deriv);
                embedAcc += value;
                deriv.storeu(fp_.data() + i);
            }
            for (; i < sliceEnd; ++i) {
                double value;
                double deriv;
                tables_.embed.eval(rhoBar_[i], value, deriv);
                embedTail += value;
                fp_[i] = deriv;
            }
            // Vector sum first, tail second: the legacy summation
            // order, preserved bitwise.
            energySlice[s] = embedAcc.sum() + embedTail;
        } else {
            for (; i < sliceEnd; ++i) {
                double value;
                double deriv;
                tables_.embed.eval(rhoBar_[i], value, deriv);
                embedTail += value;
                fp_[i] = deriv;
            }
            energySlice[s] = embedTail;
        }
    });
    for (int s = 0; s < slices.count(); ++s)
        energy_ += energySlice[s];
    sim.comm->forwardScalar(sim, fp_);

    // Pass 2: forces. fScalar is masked (not the accumulators), so
    // rejected and sentinel lanes contribute exact zeros to fi, the
    // energies, and the virial, and are skipped by the Newton scatter.
    const double *fp = fp_.data();
    xpackPtr = xpack<real>().setPayload(fp, nallPad);
    fscratch_.runAndReduce(pool, slices, nall, atoms.f.data(), [&](
        std::size_t sliceBegin, std::size_t sliceEnd, int s, int buffer) {
        auto fw = fscratch_.acc(buffer);
        const real *const xpk = xpackPtr;
        const std::uint32_t *const pk = packed;
        const SpView rhoSp = rhoTab;
        const SpView phiSp = phiTab;
        const D cutSqL(static_cast<real>(cutSq));
        const D zeroL(real(0));
        const D minusOneL(real(-1));
        // Energy/virial accumulation (see PairLJCut): the double tier
        // keeps slice-long lane-striped accumulators — at W = 1 exactly
        // the scalar kernel's running sums. Float tiers reset the lane
        // stripes every row and flush the row sum into `acc` scalars.
        D energyAcc(real(0));
        D virialAcc(real(0));
        acc energyRows = acc(0);
        acc virialRows = acc(0);
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            const real *xiRec = xpk + 4 * i;
            const D xiX(xiRec[0]), xiY(xiRec[1]), xiZ(xiRec[2]);
            const D fpI(xiRec[3]);
            D fiX(real(0)), fiY(real(0)), fiZ(real(0));
            D rowEnergy(real(0));
            D rowVirial(real(0));
            D &eAcc = kDoubleTier ? energyAcc : rowEnergy;
            D &vAcc = kDoubleTier ? virialAcc : rowVirial;
            const auto [begin, end] = list.packedRange(i);
            for (std::uint32_t k = begin; k < end; k += W) {
                D xjX, xjY, xjZ, fpJ;
                loadXyzw(xpk, pk + k, xjX, xjY, xjZ, fpJ);
                const D dx = xiX - xjX;
                const D dy = xiY - xjY;
                const D dz = xiZ - xjZ;
                const D r2 = D::fma(dz, dz, D::fma(dy, dy, dx * dx));
                const M mask = r2 < cutSqL;
                const int active = mask.bits();
                if (active == 0)
                    continue;
                const D r = D::sqrt(r2);
                D phiV, phiD;
                evalSplineSimd<real, W>(phiSp, r, phiV, phiD);
                D rhoV, rhoD;
                evalSplineSimd<real, W>(rhoSp, r, rhoV, rhoD);
                // -x as (-1.0) * x: bitwise identical to the scalar
                // unary minus for every finite value including zeros.
                const D fScalar = D::select(
                    mask, minusOneL * ((fpI + fpJ) * rhoD + phiD), zeroL);
                const D fOverR = fScalar / r;
                const D fpx = dx * fOverR;
                const D fpy = dy * fOverR;
                const D fpz = dz * fOverR;
                fiX += fpx;
                fiY += fpy;
                fiZ += fpz;
                // Newton scatter: pair terms spilled once, set-bit walk
                // ascending = the scalar kernel's ascending-k order.
                // Float-tier pair terms widen here, once per store.
                alignas(64) real sx[W], sy[W], sz[W];
                fpx.storeu(sx);
                fpy.storeu(sy);
                fpz.storeu(sz);
                for (int rest = active; rest; rest &= rest - 1) {
                    const int l =
                        std::countr_zero(static_cast<unsigned>(rest));
                    Vec3 &fj = fw.at(pk[k + l]);
                    fj.x -= sx[l];
                    fj.y -= sy[l];
                    fj.z -= sz[l];
                }
                eAcc += D::select(mask, phiV, zeroL);
                vAcc += fScalar * r;
            }
            // Row force sums widen into the double scratch arrays
            // (float tiers: the once-per-atom widening).
            Vec3 &fi = fw.at(i);
            fi.x += fiX.sum();
            fi.y += fiY.sum();
            fi.z += fiZ.sum();
            if constexpr (!kDoubleTier) {
                energyRows += static_cast<acc>(rowEnergy.sum());
                virialRows += static_cast<acc>(rowVirial.sum());
            }
        }
        if constexpr (kDoubleTier) {
            energySlice[s] = energyAcc.sum();
            virialSlice[s] = virialAcc.sum();
        } else {
            energySlice[s] = static_cast<double>(energyRows);
            virialSlice[s] = static_cast<double>(virialRows);
        }
    });
    for (int s = 0; s < slices.count(); ++s) {
        energy_ += energySlice[s];
        virial_ += virialSlice[s];
    }
}

} // namespace mdbench
