#include "forcefield/pair_eam.h"

#include <cmath>

#include "md/neighbor.h"
#include "md/simulation.h"
#include "util/error.h"

namespace mdbench {

EamTables
EamTables::makeSyntheticCopper(double cutoff, int points)
{
    require(points >= 16, "EAM table needs a reasonable resolution");

    // Copper-like constants: Morse pair term fitted to Cu dimer data and
    // an exponentially decaying density; both smoothly truncated so value
    // and slope vanish at the cutoff.
    const double morseD = 0.3429;   // eV
    const double morseA = 1.3588;   // 1/A
    const double r0 = 2.866;        // A, Cu dimer distance
    const double rhoAmp = 1.0;
    const double rhoBeta = 3.9;

    auto morse = [&](double r) {
        const double e = std::exp(-morseA * (r - r0));
        return morseD * ((1.0 - e) * (1.0 - e) - 1.0);
    };
    auto morseDeriv = [&](double r) {
        const double e = std::exp(-morseA * (r - r0));
        return 2.0 * morseD * morseA * e * (1.0 - e);
    };
    auto density = [&](double r) {
        return rhoAmp * std::exp(-rhoBeta * (r / r0 - 1.0));
    };
    auto densityDeriv = [&](double r) {
        return -rhoBeta / r0 * density(r);
    };

    const double rMin = 1.0; // below this, clamp (never sampled in a solid)
    const double dr = (cutoff - rMin) / (points - 1);
    std::vector<double> phiSamples(points);
    std::vector<double> rhoSamples(points);
    const double phiC = morse(cutoff);
    const double phiD = morseDeriv(cutoff);
    const double rhoC = density(cutoff);
    const double rhoD = densityDeriv(cutoff);
    for (int i = 0; i < points; ++i) {
        const double r = rMin + i * dr;
        phiSamples[i] = morse(r) - phiC - phiD * (r - cutoff);
        rhoSamples[i] = density(r) - rhoC - rhoD * (r - cutoff);
    }

    // Equilibrium host density: 12 fcc nearest neighbors at a/sqrt(2)
    // with a = 3.615 A.
    const double nn = 3.615 / std::sqrt(2.0);
    const double rhoE = 12.0 * (density(nn) - rhoC - rhoD * (nn - cutoff));
    const double embedF0 = 2.3; // eV-scale embedding strength
    const double rhoMax = 3.0 * rhoE;
    const double drho = rhoMax / (points - 1);
    std::vector<double> embedSamples(points);
    for (int i = 0; i < points; ++i) {
        const double rho = i * drho;
        embedSamples[i] = -embedF0 * std::sqrt(rho / rhoE);
    }

    EamTables tables;
    tables.phi = CubicSpline(rMin, dr, std::move(phiSamples));
    tables.rho = CubicSpline(rMin, dr, std::move(rhoSamples));
    tables.embed = CubicSpline(0.0, drho, std::move(embedSamples));
    tables.cutoff = cutoff;
    return tables;
}

PairEAM::PairEAM(EamTables tables) : tables_(std::move(tables))
{
    require(tables_.cutoff > 0.0, "EAM cutoff must be positive");
}

void
PairEAM::compute(Simulation &sim, const NeighborList &list)
{
    ensure(!list.full, "eam requires a half neighbor list");
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    const std::size_t nlocal = atoms.nlocal();
    const std::size_t nall = atoms.nall();
    const double cutSq = tables_.cutoff * tables_.cutoff;

    // Pass 1: host electron densities.
    rhoBar_.assign(nall, 0.0);
    for (std::size_t i = 0; i < nlocal; ++i) {
        const Vec3 xi = atoms.x[i];
        const auto [begin, end] = list.range(i);
        for (std::uint32_t k = begin; k < end; ++k) {
            const std::uint32_t j = list.neighbors[k];
            const double r2 = (xi - atoms.x[j]).normSq();
            if (r2 >= cutSq)
                continue;
            const double contribution = tables_.rho.value(std::sqrt(r2));
            rhoBar_[i] += contribution;
            rhoBar_[j] += contribution;
        }
    }
    sim.comm->reverseScalar(sim, rhoBar_);

    // Embedding energies and derivatives for owned atoms, then share the
    // derivatives with ghosts for the force pass.
    fp_.assign(nall, 0.0);
    for (std::size_t i = 0; i < nlocal; ++i) {
        double value;
        double deriv;
        tables_.embed.eval(rhoBar_[i], value, deriv);
        energy_ += value;
        fp_[i] = deriv;
    }
    sim.comm->forwardScalar(sim, fp_);

    // Pass 2: forces from pair term + density-mediated embedding term.
    for (std::size_t i = 0; i < nlocal; ++i) {
        const Vec3 xi = atoms.x[i];
        Vec3 fi{};
        const auto [begin, end] = list.range(i);
        for (std::uint32_t k = begin; k < end; ++k) {
            const std::uint32_t j = list.neighbors[k];
            const Vec3 delta = xi - atoms.x[j];
            const double r2 = delta.normSq();
            if (r2 >= cutSq)
                continue;
            const double r = std::sqrt(r2);
            double phiV;
            double phiD;
            tables_.phi.eval(r, phiV, phiD);
            const double rhoD = tables_.rho.derivative(r);
            // -dE/dr along the pair axis.
            const double fScalar = -((fp_[i] + fp_[j]) * rhoD + phiD);
            const Vec3 fvec = delta * (fScalar / r);
            fi += fvec;
            atoms.f[j] -= fvec;
            energy_ += phiV;
            virial_ += fScalar * r;
        }
        atoms.f[i] += fi;
    }
}

} // namespace mdbench
