#include "forcefield/bond_styles.h"

#include <algorithm>
#include <cmath>

#include "md/simulation.h"
#include "util/error.h"

namespace mdbench {

namespace {

/** Resolve a bond/angle tag or panic: topology must be mappable. */
std::size_t
resolve(const Simulation &sim, std::int64_t tag)
{
    const std::int64_t idx = sim.topology.indexOf(tag);
    ensure(idx >= 0, "bonded atom tag not present on this domain");
    return static_cast<std::size_t>(idx);
}

} // namespace

BondFENE::BondFENE(int nBondTypes)
    : coeffs_(static_cast<std::size_t>(nBondTypes) + 1)
{
    require(nBondTypes >= 1, "need at least one bond type");
}

void
BondFENE::setCoeff(int type, const Coeff &coeff)
{
    require(type >= 1 && type < static_cast<int>(coeffs_.size()),
            "fene bond type out of range");
    coeffs_[type] = coeff;
}

void
BondFENE::compute(Simulation &sim)
{
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    for (const Bond &bond : sim.topology.bonds) {
        const std::size_t a = resolve(sim, bond.tagA);
        const std::size_t b = resolve(sim, bond.tagB);
        const Coeff &c = coeffs_[bond.type];
        const Vec3 delta = sim.box.minimumImage(atoms.x[a] - atoms.x[b]);
        const double rsq = delta.normSq();
        const double r0sq = c.r0 * c.r0;
        const double rlogarg = 1.0 - rsq / r0sq;
        require(rlogarg > 0.02, "fene bond overstretched (r close to R0)");

        // Attractive FENE part.
        double fbond = -c.k / rlogarg;
        energy_ += -0.5 * c.k * r0sq * std::log(rlogarg);

        // Embedded WCA repulsion below 2^(1/6) sigma.
        const double wcaCutSq = std::pow(2.0, 1.0 / 3.0) * c.sigma * c.sigma;
        if (rsq < wcaCutSq) {
            const double sr2 = c.sigma * c.sigma / rsq;
            const double sr6 = sr2 * sr2 * sr2;
            fbond += 24.0 * c.epsilon * sr6 * (2.0 * sr6 - 1.0) / rsq;
            energy_ += 4.0 * c.epsilon * sr6 * (sr6 - 1.0) + c.epsilon;
        }

        const Vec3 fvec = delta * fbond;
        atoms.f[a] += fvec;
        atoms.f[b] -= fvec;
        virial_ += fbond * rsq;
    }
}

BondHarmonic::BondHarmonic(int nBondTypes)
    : coeffs_(static_cast<std::size_t>(nBondTypes) + 1)
{
    require(nBondTypes >= 1, "need at least one bond type");
}

void
BondHarmonic::setCoeff(int type, const Coeff &coeff)
{
    require(type >= 1 && type < static_cast<int>(coeffs_.size()),
            "harmonic bond type out of range");
    coeffs_[type] = coeff;
}

void
BondHarmonic::compute(Simulation &sim)
{
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    for (const Bond &bond : sim.topology.bonds) {
        const std::size_t a = resolve(sim, bond.tagA);
        const std::size_t b = resolve(sim, bond.tagB);
        const Coeff &c = coeffs_[bond.type];
        const Vec3 delta = sim.box.minimumImage(atoms.x[a] - atoms.x[b]);
        const double r = delta.norm();
        const double dr = r - c.r0;
        const double fbond = r > 0.0 ? -2.0 * c.k * dr / r : 0.0;
        const Vec3 fvec = delta * fbond;
        atoms.f[a] += fvec;
        atoms.f[b] -= fvec;
        energy_ += c.k * dr * dr;
        virial_ += fbond * r * r;
    }
}

AngleHarmonic::AngleHarmonic(int nAngleTypes)
    : coeffs_(static_cast<std::size_t>(nAngleTypes) + 1)
{
    require(nAngleTypes >= 1, "need at least one angle type");
}

void
AngleHarmonic::setCoeff(int type, const Coeff &coeff)
{
    require(type >= 1 && type < static_cast<int>(coeffs_.size()),
            "harmonic angle type out of range");
    coeffs_[type] = coeff;
}

void
AngleHarmonic::compute(Simulation &sim)
{
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    for (const Angle &angle : sim.topology.angles) {
        const std::size_t a = resolve(sim, angle.tagA);
        const std::size_t b = resolve(sim, angle.tagB); // vertex
        const std::size_t c = resolve(sim, angle.tagC);
        const Coeff &coeff = coeffs_[angle.type];

        const Vec3 d1 = sim.box.minimumImage(atoms.x[a] - atoms.x[b]);
        const Vec3 d2 = sim.box.minimumImage(atoms.x[c] - atoms.x[b]);
        const double r1 = d1.norm();
        const double r2 = d2.norm();
        double cosTheta = d1.dot(d2) / (r1 * r2);
        cosTheta = std::clamp(cosTheta, -1.0, 1.0);
        double sinTheta = std::sqrt(1.0 - cosTheta * cosTheta);
        if (sinTheta < 1e-8)
            sinTheta = 1e-8;
        const double theta = std::acos(cosTheta);
        const double dTheta = theta - coeff.theta0;

        // dE/dtheta = 2 k dTheta; convert to Cartesian forces.
        const double factor = -2.0 * coeff.k * dTheta / sinTheta;
        const double c11 = factor * cosTheta / (r1 * r1);
        const double c12 = -factor / (r1 * r2);
        const double c22 = factor * cosTheta / (r2 * r2);

        const Vec3 f1 = d1 * c11 + d2 * c12;
        const Vec3 f3 = d2 * c22 + d1 * c12;
        atoms.f[a] += f1;
        atoms.f[c] += f3;
        atoms.f[b] -= f1 + f3;

        energy_ += coeff.k * dTheta * dTheta;
        virial_ += d1.dot(f1) + d2.dot(f3);
    }
}

} // namespace mdbench
