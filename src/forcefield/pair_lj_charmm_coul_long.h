/**
 * @file
 * CHARMM Lennard-Jones with switching + long-range-split Coulomb
 * (LAMMPS `pair_style lj/charmm/coul/long`), the short-range force field
 * of the Rhodopsin workload.
 *
 * The LJ term switches smoothly to zero between an inner and outer cutoff
 * (the paper's 8.0-10.0 A); the Coulomb term computes the short-range
 * erfc(g r)/r part of the Ewald/PPPM splitting, with g supplied by the
 * attached k-space solver.
 */

#ifndef MDBENCH_FORCEFIELD_PAIR_LJ_CHARMM_COUL_LONG_H
#define MDBENCH_FORCEFIELD_PAIR_LJ_CHARMM_COUL_LONG_H

#include <type_traits>
#include <vector>

#include "md/styles.h"
#include "md/vec3.h"
#include "md/xpack.h"
#include "util/precision.h"
#include "util/thread_pool.h"

namespace mdbench {

/**
 * lj/charmm/coul/long pair style with arithmetic mixing
 * (`pair_modify mix arithmetic`, as Table 2 of the paper lists).
 */
class PairLJCharmmCoulLong : public PairStyle
{
  public:
    /**
     * @param ntypes   Number of atom types.
     * @param ljInner  Inner LJ cutoff (switching starts here).
     * @param ljOuter  Outer LJ cutoff (LJ is zero beyond).
     * @param coulCut  Coulomb real-space cutoff.
     */
    PairLJCharmmCoulLong(int ntypes, double ljInner, double ljOuter,
                         double coulCut);

    /** Set per-type LJ coefficients (diagonal; off-diagonals are mixed). */
    void setCoeff(int type, double epsilon, double sigma);

    std::string name() const override { return "lj/charmm/coul/long"; }
    double cutoff() const override;
    void compute(Simulation &sim, const NeighborList &list) override;

    /** Coulomb part of the last compute's energy. */
    double coulombEnergy() const { return ecoul_; }

    /** LJ part of the last compute's energy. */
    double ljEnergy() const { return evdwl_; }

  private:
    struct Coeff
    {
        double lj1 = 0.0;
        double lj2 = 0.0;
        double lj3 = 0.0;
        double lj4 = 0.0;
    };

    const Coeff &coeff(int typeA, int typeB) const;

    int ntypes_;
    double ljInner_;
    double ljOuter_;
    double coulCut_;
    std::vector<double> epsilon_; ///< per-type (1-based)
    std::vector<double> sigma_;
    std::vector<Coeff> coeffs_;
    bool coeffsBuilt_ = false;
    double ecoul_ = 0.0;
    double evdwl_ = 0.0;

    /**
     * Float mirror of coeffs_ (same element stride, values cast once)
     * gathered by the float-tier kernels; rebuilt with buildCoeffs.
     */
    std::vector<float> coeffsF_;

    /** Per-slice j-side force buffers (half lists, Newton on). */
    ReduceScratch<Vec3> fscratch_;

    /**
     * Positions + charge repacked as 4-element [x, y, z, q] records
     * (md/xpack.h, pad atom included) in the active tier's `real`
     * type, refilled each compute; feeds loadXyzw so the SIMD kernel
     * loads j positions and charges in one transpose instead of four
     * hardware gathers (and, on float tiers, converts each coordinate
     * and charge once per compute instead of once per pair).
     */
    XPack<double> xpackD_;
    XPack<float> xpackF_;

    template <typename T>
    XPack<T> &
    xpack()
    {
        if constexpr (std::is_same_v<T, double>)
            return xpackD_;
        else
            return xpackF_;
    }

    void buildCoeffs();

    /**
     * The kernel proper. kSingleType hoists the single LJ coefficient
     * set out of both loops and skips the per-pair type lookup; the
     * multi-type path uses one table-row pointer per i. Arithmetic is
     * identical on both paths.
     */
    template <bool kSingleType>
    void computeImpl(Simulation &sim, const NeighborList &list);

    /**
     * SIMD kernel over the padded packing (DESIGN.md §12-13). The LJ +
     * switching arithmetic and the Ewald prefactor algebra are W-wide
     * with masked-cutoff selects; erfc/exp have no vector form in libm,
     * so those two calls run per active coulomb lane (sentinel and
     * out-of-range lanes skip them exactly as the scalar branch does).
     * Mirrors computeImpl's operation order, so at W = 1 on a no-FMA
     * build the double-tier instantiation reproduces the scalar
     * kernel's results.
     *
     * P is the precision policy (util/precision.h): per-pair
     * arithmetic — including the per-lane erfc/exp calls, which
     * resolve to the float libm overloads — runs in P::real; the
     * double tier accumulates energies/virial in slice-long lane
     * stripes (the bitwise-legacy order), float tiers flush per-row
     * partial sums into P::acc scalars. Per-atom forces always land
     * in the double scratch arrays, widened once per atom row.
     */
    template <typename P, int W, bool kSingleType>
    void computeSimdImpl(Simulation &sim, const NeighborList &list);

    /** Tier dispatch: the list's recorded packTier picks the policy. */
    template <bool kSingleType>
    void dispatch(Simulation &sim, const NeighborList &list);

    /** Width dispatch: packed-list widths take the SIMD kernel. */
    template <typename P, bool kSingleType>
    void dispatchWidth(Simulation &sim, const NeighborList &list);
};

} // namespace mdbench

#endif // MDBENCH_FORCEFIELD_PAIR_LJ_CHARMM_COUL_LONG_H
