#include "forcefield/pair_lj_cut.h"

#include <array>
#include <bit>
#include <cmath>
#include <type_traits>

#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/simd.h"

namespace mdbench {

PairLJCut::PairLJCut(int ntypes, double cut, bool shift)
    : ntypes_(ntypes), cutoff_(cut), shift_(shift),
      coeffs_(static_cast<std::size_t>(ntypes + 1) * (ntypes + 1))
{
    require(ntypes >= 1, "lj/cut needs at least one type");
    require(cut > 0.0, "lj/cut cutoff must be positive");
}

PairLJCut::Coeff &
PairLJCut::coeff(int typeA, int typeB)
{
    return coeffs_[static_cast<std::size_t>(typeA) * (ntypes_ + 1) + typeB];
}

const PairLJCut::Coeff &
PairLJCut::coeff(int typeA, int typeB) const
{
    return coeffs_[static_cast<std::size_t>(typeA) * (ntypes_ + 1) + typeB];
}

void
PairLJCut::precompute(Coeff &c) const
{
    // Explicit multiplies, not std::pow(x, 6): integer powers keep the
    // coefficients bitwise-stable across libm versions.
    const double s2 = c.sigma * c.sigma;
    const double s6 = s2 * s2 * s2;
    const double s12 = s6 * s6;
    c.lj1 = 48.0 * c.epsilon * s12;
    c.lj2 = 24.0 * c.epsilon * s6;
    c.lj3 = 4.0 * c.epsilon * s12;
    c.lj4 = 4.0 * c.epsilon * s6;
    if (shift_) {
        const double rc2 = cutoff_ * cutoff_;
        const double rc6 = rc2 * rc2 * rc2;
        c.eshift = c.lj3 / (rc6 * rc6) - c.lj4 / rc6;
    } else {
        c.eshift = 0.0;
    }
    c.set = true;
}

void
PairLJCut::setCoeff(int typeA, int typeB, double epsilon, double sigma)
{
    require(typeA >= 1 && typeA <= ntypes_ && typeB >= 1 && typeB <= ntypes_,
            "lj/cut type out of range");
    Coeff c;
    c.epsilon = epsilon;
    c.sigma = sigma;
    precompute(c);
    coeff(typeA, typeB) = c;
    coeff(typeB, typeA) = c;
    coeffsFDirty_ = true;
}

void
PairLJCut::refreshFloatCoeffs()
{
    if (!coeffsFDirty_)
        return;
    constexpr std::size_t stride = sizeof(Coeff) / sizeof(double);
    const double *src = reinterpret_cast<const double *>(coeffs_.data());
    coeffsF_.assign(coeffs_.size() * stride, 0.0f);
    // Cast the numeric leading fields once (lj1..eshift, epsilon,
    // sigma); the trailing `set` flag slot stays zero.
    for (std::size_t e = 0; e < coeffs_.size(); ++e) {
        for (std::size_t cpt = 0; cpt < 7; ++cpt) {
            coeffsF_[e * stride + cpt] =
                static_cast<float>(src[e * stride + cpt]);
        }
    }
    coeffsFDirty_ = false;
}

void
PairLJCut::mix(MixRule rule)
{
    for (int a = 1; a <= ntypes_; ++a) {
        for (int b = a + 1; b <= ntypes_; ++b) {
            if (coeff(a, b).set)
                continue;
            const Coeff &ca = coeff(a, a);
            const Coeff &cb = coeff(b, b);
            require(ca.set && cb.set,
                    "cannot mix: diagonal coefficients missing");
            const double eps = std::sqrt(ca.epsilon * cb.epsilon);
            const double sigma = rule == MixRule::Arithmetic
                                     ? 0.5 * (ca.sigma + cb.sigma)
                                     : std::sqrt(ca.sigma * cb.sigma);
            setCoeff(a, b, eps, sigma);
        }
    }
}

void
PairLJCut::compute(Simulation &sim, const NeighborList &list)
{
    if (ntypes_ == 1)
        dispatch<true>(sim, list);
    else
        dispatch<false>(sim, list);
}

template <bool kSingleType>
void
PairLJCut::dispatch(Simulation &sim, const NeighborList &list)
{
    // The list records the precision tier its padded packing was built
    // for (util/precision.h): float tiers run the same kernel
    // instantiated over float lanes, at twice the lane count per ISA
    // level. padWidth 0 (SIMD layer off) takes the scalar double
    // oracle regardless of tier.
    switch (list.packTier) {
      case Precision::Mixed:
        return dispatchWidth<PrecisionMixed, kSingleType>(sim, list);
      case Precision::Single:
        return dispatchWidth<PrecisionSingle, kSingleType>(sim, list);
      default:
        return dispatchWidth<PrecisionDouble, kSingleType>(sim, list);
    }
}

template <typename P, bool kSingleType>
void
PairLJCut::dispatchWidth(Simulation &sim, const NeighborList &list)
{
    // The generic backend compiles every width on every build, so the
    // packed path is exercised even by portable/sanitizer builds when a
    // width is forced; padWidth 0 (SIMD layer off) takes the scalar
    // oracle below. The list flavor is a template parameter so the
    // full-list loop carries no Newton-scatter code at all — compiled
    // in, it inflates register pressure enough to spill the hoisted
    // constants out of the hot loop.
    // Cluster-pair layout (clusterN >= 2) replaces the padded packing
    // entirely for this style: the pair list stores one entry per M×N
    // cluster pair and the traversal is always full-style, whatever
    // flavor the plain CSR list has.
    switch (list.clusterN) {
      case 2:
        return computeClusterImpl<P, 2, kSingleType>(sim, list);
      case 4:
        return computeClusterImpl<P, 4, kSingleType>(sim, list);
      case 8:
        return computeClusterImpl<P, 8, kSingleType>(sim, list);
      case 16:
        return computeClusterImpl<P, 16, kSingleType>(sim, list);
      default:
        break;
    }
    const bool half = !list.full;
    switch (list.padWidth) {
      case 1:
        return half ? computeSimdImpl<P, 1, kSingleType, true>(sim, list)
                    : computeSimdImpl<P, 1, kSingleType, false>(sim, list);
      case 2:
        return half ? computeSimdImpl<P, 2, kSingleType, true>(sim, list)
                    : computeSimdImpl<P, 2, kSingleType, false>(sim, list);
      case 4:
        return half ? computeSimdImpl<P, 4, kSingleType, true>(sim, list)
                    : computeSimdImpl<P, 4, kSingleType, false>(sim, list);
      case 8:
        return half ? computeSimdImpl<P, 8, kSingleType, true>(sim, list)
                    : computeSimdImpl<P, 8, kSingleType, false>(sim, list);
      case 16:
        return half ? computeSimdImpl<P, 16, kSingleType, true>(sim, list)
                    : computeSimdImpl<P, 16, kSingleType, false>(sim, list);
      default:
        return computeImpl<kSingleType>(sim, list);
    }
}

template <bool kSingleType>
void
PairLJCut::computeImpl(Simulation &sim, const NeighborList &list)
{
    TraceScope trace("pair", "lj/cut");
    counterAdd(Counter::PairComputes);
    counterAdd(Counter::PairInteractions, list.pairCount());
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    const double cutSq = cutoff_ * cutoff_;
    const std::size_t nlocal = atoms.nlocal();
    // Full lists visit each pair twice; halve shared accumulators and
    // skip the j-side force update (f[i] is then the only force write,
    // so no reduction scratch is needed).
    const bool half = !list.full;
    const double pairScale = half ? 1.0 : 0.5;

    ThreadPool &pool = ThreadPool::global();
    const SliceRange slices(0, nlocal, forceKernelGrain(nlocal));
    std::array<double, SliceRange::kMaxSlices> energySlice{};
    std::array<double, SliceRange::kMaxSlices> virialSlice{};

    const Vec3 *x = atoms.x.data();
    const int *type = atoms.type.data();
    const Coeff *coeffs = coeffs_.data();
    const Coeff cSingle = coeff(1, 1);
    Vec3 *f = atoms.f.data();
    // For half lists every force write — the i-side row sums as well as
    // the j-side pair terms — goes through the reduction scratch, so
    // each f entry receives exactly the per-slice partial sums that
    // runAndReduce folds in ascending slice order. buffer is -1 on the
    // full-list path, where f[i] is the only write and needs no
    // scratch.
    auto kernel = [&](std::size_t sliceBegin, std::size_t sliceEnd, int s,
                      int buffer) {
        ReduceScratch<Vec3>::Accumulator fw;
        if (half)
            fw = fscratch_.acc(buffer);
        double energy = 0.0;
        double virial = 0.0;
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            const Vec3 xi = x[i];
            // One 2-D table row per i, not one lookup per pair: the
            // row base replaces the per-pair ti * (ntypes + 1) index
            // arithmetic with a plain type[j] offset.
            const Coeff *row =
                kSingleType ? nullptr
                            : coeffs + static_cast<std::size_t>(type[i]) *
                                           (ntypes_ + 1);
            Vec3 fi{};
            const auto [begin, end] = list.range(i);
            for (std::uint32_t k = begin; k < end; ++k) {
                const std::uint32_t j = list.neighbors[k];
                const Vec3 delta = xi - x[j];
                const double r2 = delta.normSq();
                if (r2 >= cutSq)
                    continue;
                const Coeff &c = kSingleType ? cSingle : row[type[j]];
                const double r2inv = 1.0 / r2;
                const double r6inv = r2inv * r2inv * r2inv;
                const double forcelj =
                    r6inv * (c.lj1 * r6inv - c.lj2) * r2inv;
                const Vec3 fpair = delta * forcelj;
                fi += fpair;
                if (half)
                    fw.at(j) -= fpair;
                energy += pairScale *
                          (r6inv * (c.lj3 * r6inv - c.lj4) - c.eshift);
                virial += pairScale * forcelj * r2;
            }
            if (half)
                fw.at(i) += fi;
            else
                f[i] += fi;
        }
        energySlice[s] = energy;
        virialSlice[s] = virial;
    };
    if (half) {
        fscratch_.runAndReduce(pool, slices, atoms.nall(), f, kernel);
    } else {
        pool.run(slices, [&](std::size_t begin, std::size_t end, int s) {
            kernel(begin, end, s, -1);
        });
    }
    for (int s = 0; s < slices.count(); ++s) {
        energy_ += energySlice[s];
        virial_ += virialSlice[s];
    }
}

template <typename P, int W, bool kSingleType, bool kHalf>
void
PairLJCut::computeSimdImpl(Simulation &sim, const NeighborList &list)
{
    using real = typename P::real;
    using acc = typename P::acc;
    constexpr bool kDoubleTier = std::is_same_v<real, double>;

    // Coeff gathers index the table as a flat element array: the struct
    // must be exactly a whole number of doubles with lj1..eshift first
    // (the float mirror replicates the same element stride).
    static_assert(sizeof(Coeff) % sizeof(double) == 0);
    static_assert(sizeof(Vec3) == 3 * sizeof(double));
    [[maybe_unused]] constexpr std::uint32_t kCoeffStride =
        sizeof(Coeff) / sizeof(double);

    TraceScope trace("pair", "lj/cut");
    TraceScope simdTrace("pair", "simd");
    counterAdd(Counter::PairComputes);
    counterAdd(Counter::PairInteractions, list.pairCount());
    countSimdLaneUse(list);
    if constexpr (!kDoubleTier)
        counterAdd(Counter::PairFloatComputes);
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    const double cutSq = cutoff_ * cutoff_;
    const std::size_t nlocal = atoms.nlocal();
    // Full lists visit each pair twice; halve shared accumulators.
    const double pairScale = kHalf ? 1.0 : 0.5;

    ThreadPool &pool = ThreadPool::global();
    const SliceRange slices(0, nlocal, forceKernelGrain(nlocal));
    std::array<double, SliceRange::kMaxSlices> energySlice{};
    std::array<double, SliceRange::kMaxSlices> virialSlice{};

    using D = Simd<real, W>;
    using I = SimdIndex<W>;
    using M = SimdMask<real, W>;

    const int *type = atoms.type.data();
    const real *coeffBase;
    if constexpr (kDoubleTier) {
        coeffBase = reinterpret_cast<const double *>(coeffs_.data());
    } else {
        refreshFloatCoeffs();
        coeffBase = coeffsF_.data();
    }
    const Coeff cSingle = coeff(1, 1);
    const std::uint32_t *packed = list.packedNeighbors.data();
    Vec3 *f = atoms.f.data();

    // Stage positions as 4-element records in the tier's `real` type
    // (md/xpack.h) so the inner loop uses transpose loads instead of
    // three hardware gathers per group — and float tiers convert each
    // coordinate exactly once per compute, not once per pair.
    const std::size_t nallPad = atoms.nall() + atoms.npad();
    const real *xpackPtr = xpack<real>().stage(atoms.x.data(), nullptr,
                                               nallPad);

    auto kernel = [&](std::size_t sliceBegin, std::size_t sliceEnd, int s,
                      int buffer) {
        ReduceScratch<Vec3>::Accumulator fw;
        if constexpr (kHalf)
            fw = fscratch_.acc(buffer);
        // Everything the inner loop touches lives in lambda-locals, not
        // reference captures: the force scatters store through double
        // pointers, and values reached through the closure would have
        // to be conservatively reloaded after every such store.
        const real *const xpk = xpackPtr;
        const std::uint32_t *const pk = packed;
        const D cutSqV(static_cast<real>(cutSq));
        const D lj1S(static_cast<real>(cSingle.lj1));
        const D lj2S(static_cast<real>(cSingle.lj2));
        const D lj3S(static_cast<real>(cSingle.lj3));
        const D lj4S(static_cast<real>(cSingle.lj4));
        const D eshS(static_cast<real>(cSingle.eshift));
        // Energy/virial accumulation (the tier's `acc` rule): the
        // double tier keeps slice-long lane-striped accumulators
        // reduced once per slice — at W = 1 exactly the scalar
        // kernel's running sum, preserved bitwise. Float tiers reset
        // the lane stripes every row and flush the row sum into an
        // `acc` scalar (double for mixed, float for single), bounding
        // float accumulation error at the row length.
        D energyAcc(real(0));
        D virialAcc(real(0));
        acc energyRows = acc(0);
        acc virialRows = acc(0);
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            const real *xiRec = xpk + 4 * i;
            const std::uint32_t rowBase =
                kSingleType ? 0
                            : static_cast<std::uint32_t>(type[i]) *
                                  static_cast<std::uint32_t>(ntypes_ + 1);
            const D xiX(xiRec[0]), xiY(xiRec[1]), xiZ(xiRec[2]);
            D fiX(real(0)), fiY(real(0)), fiZ(real(0));
            D rowEnergy(real(0));
            D rowVirial(real(0));
            D &eAcc = kDoubleTier ? energyAcc : rowEnergy;
            D &vAcc = kDoubleTier ? virialAcc : rowVirial;
            const auto [begin, end] = list.packedRange(i);
            for (std::uint32_t k = begin; k < end; k += W) {
                D xjX, xjY, xjZ;
                loadXyz(xpk, pk + k, xjX, xjY, xjZ);
                const D dx = xiX - xjX;
                const D dy = xiY - xjY;
                const D dz = xiZ - xjZ;
                // fma association matches Vec3::normSq bitwise on the
                // generic backend (addition order is commutative).
                const D r2 = D::fma(dz, dz, D::fma(dy, dy, dx * dx));
                const M mask = r2 < cutSqV;
                // Half lists need the active-lane bits for the Newton
                // scatter anyway, so the all-rejected early-out is
                // free there. Full lists drop the movemask + branch:
                // rejected and sentinel lanes contribute exact zeros
                // through the masked factors below, so falling through
                // is bitwise identical and the branch is almost never
                // taken on a dense list.
                [[maybe_unused]] int active = 0;
                if constexpr (kHalf) {
                    active = mask.bits();
                    if (active == 0)
                        continue;
                }
                D lj1, lj2, lj3, lj4, esh;
                if constexpr (kSingleType) {
                    lj1 = lj1S; lj2 = lj2S; lj3 = lj3S; lj4 = lj4S;
                    esh = eshS;
                } else {
                    const I j = I::load(pk + k);
                    const I cidx =
                        (I::gather32(type, j) + rowBase) * kCoeffStride;
                    lj1 = D::gather(coeffBase, cidx);
                    lj2 = D::gather(coeffBase, cidx + 1u);
                    lj3 = D::gather(coeffBase, cidx + 2u);
                    lj4 = D::gather(coeffBase, cidx + 3u);
                    esh = D::gather(coeffBase, cidx + 4u);
                }
                const D r2inv = D(real(1)) / r2;
                const D r6inv = r2inv * r2inv * r2inv;
                // Masking the force factor (not the accumulator) means
                // rejected and sentinel lanes contribute exact zeros
                // everywhere downstream.
                const D forcelj = D::maskZero(
                    mask, r6inv * D::fms(lj1, r6inv, lj2) * r2inv);
                if constexpr (kHalf) {
                    const D fpx = dx * forcelj;
                    const D fpy = dy * forcelj;
                    const D fpz = dz * forcelj;
                    fiX += fpx;
                    fiY += fpy;
                    fiZ += fpz;
                    // Newton scatter: the pair terms are spilled once and
                    // the set-bit walk visits lanes ascending, matching
                    // the scalar kernel's ascending-k order; masked lanes
                    // (incl. the sentinel) are skipped exactly as the
                    // scalar `continue` skips them. Float-tier pair
                    // terms widen here, once per store.
                    alignas(64) real sx[W], sy[W], sz[W];
                    fpx.storeu(sx);
                    fpy.storeu(sy);
                    fpz.storeu(sz);
                    for (int rest = active; rest; rest &= rest - 1) {
                        const int l = std::countr_zero(
                            static_cast<unsigned>(rest));
                        Vec3 &fj = fw.at(pk[k + l]);
                        fj.x -= sx[l];
                        fj.y -= sy[l];
                        fj.z -= sz[l];
                    }
                } else {
                    // Same value as fiX += dx*forcelj (addition order is
                    // commutative bitwise), fused on the ISA backends.
                    fiX = D::fma(dx, forcelj, fiX);
                    fiY = D::fma(dy, forcelj, fiY);
                    fiZ = D::fma(dz, forcelj, fiZ);
                }
                // Accumulated unscaled; the full-list 1/2 double-count
                // factor is applied once at the slice flush. Scaling by
                // a power of two commutes exactly with every rounding
                // step, so this is bitwise identical to scaling each
                // pair term (and saves two multiplies per group).
                eAcc += D::maskZero(
                    mask, D::fms(r6inv, D::fms(lj3, r6inv, lj4), esh));
                vAcc = D::fma(forcelj, r2, vAcc);
            }
            // Row force sums land in the double force arrays — for
            // float tiers this is the once-per-atom widening that
            // makes mixed "float arithmetic, double accumulation".
            real rx, ry, rz;
            sumXyz(fiX, fiY, fiZ, rx, ry, rz);
            if constexpr (kHalf) {
                Vec3 &fi = fw.at(i);
                fi.x += rx;
                fi.y += ry;
                fi.z += rz;
            } else {
                f[i].x += rx;
                f[i].y += ry;
                f[i].z += rz;
            }
            if constexpr (!kDoubleTier) {
                real re, rv;
                sumPair(rowEnergy, rowVirial, re, rv);
                energyRows += static_cast<acc>(re);
                virialRows += static_cast<acc>(rv);
            }
        }
        if constexpr (kDoubleTier) {
            energySlice[s] = pairScale * energyAcc.sum();
            virialSlice[s] = pairScale * virialAcc.sum();
        } else {
            energySlice[s] = pairScale * static_cast<double>(energyRows);
            virialSlice[s] = pairScale * static_cast<double>(virialRows);
        }
    };
    if constexpr (kHalf) {
        fscratch_.runAndReduce(pool, slices, atoms.nall(), f, kernel);
    } else {
        pool.run(slices, [&](std::size_t begin, std::size_t end, int s) {
            kernel(begin, end, s, -1);
        });
    }
    for (int s = 0; s < slices.count(); ++s) {
        energy_ += energySlice[s];
        virial_ += virialSlice[s];
    }
}

template <typename P, int W, bool kSingleType>
void
PairLJCut::computeClusterImpl(Simulation &sim, const NeighborList &list)
{
    using real = typename P::real;
    using acc = typename P::acc;
    constexpr bool kDoubleTier = std::is_same_v<real, double>;
    static_assert(sizeof(Coeff) % sizeof(double) == 0);
    [[maybe_unused]] constexpr std::uint32_t kCoeffStride =
        sizeof(Coeff) / sizeof(double);

    TraceScope trace("pair", "lj/cut");
    TraceScope simdTrace("pair", "cluster");
    counterAdd(Counter::PairComputes);
    counterAdd(Counter::PairInteractions, list.pairCount());
    countClusterLaneUse(list);
    if constexpr (!kDoubleTier)
        counterAdd(Counter::PairFloatComputes);
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    const double cutSq = cutoff_ * cutoff_;
    // Full-style traversal: an owned-owned pair is visited from both
    // of its i-clusters, an owned-ghost pair once here and once as its
    // mirror image on the other side of the boundary — exactly the
    // full-CSR pair multiset, so the same 1/2 factor restores totals.
    const double pairScale = 0.5;

    const std::size_t m = static_cast<std::size_t>(list.clusterM);
    const std::size_t nic = list.clusterIAtoms.size() / m;

    ThreadPool &pool = ThreadPool::global();
    const SliceRange slices(0, nic, forceKernelGrain(nic));
    std::array<double, SliceRange::kMaxSlices> energySlice{};
    std::array<double, SliceRange::kMaxSlices> virialSlice{};

    using D = Simd<real, W>;
    using I = SimdIndex<W>;
    using M = SimdMask<real, W>;

    const int *type = atoms.type.data();
    const real *coeffBase;
    if constexpr (kDoubleTier) {
        coeffBase = reinterpret_cast<const double *>(coeffs_.data());
    } else {
        refreshFloatCoeffs();
        coeffBase = coeffsF_.data();
    }
    const Coeff cSingle = coeff(1, 1);
    const Vec3 *x = atoms.x.data();
    Vec3 *f = atoms.f.data();

    // Stage j positions in the cluster slot order (the build's bin
    // order): record k holds atom clusterJAtoms[k], so a j-cluster is
    // W consecutive records and loads as a contiguous transpose — the
    // layout's whole point. Sentinel slots stage the far-away pad
    // position and fail the cutoff in every kernel below.
    const real *xpackPtr = xpack<real>().stagePermuted(
        atoms.x.data(), list.clusterJAtoms.data(),
        list.clusterJAtoms.size());

    pool.run(slices, [&](std::size_t sliceBegin, std::size_t sliceEnd,
                         int s) {
        const real *const xpk = xpackPtr;
        const std::uint32_t *const jAtoms = list.clusterJAtoms.data();
        const std::uint32_t *const iAtoms = list.clusterIAtoms.data();
        const std::uint32_t *const offsets = list.clusterOffsets.data();
        const std::uint32_t *const pairs = list.clusterPairs.data();
        const std::uint32_t sentinel = list.sentinel;
        const D cutSqV(static_cast<real>(cutSq));
        const D lj1S(static_cast<real>(cSingle.lj1));
        const D lj2S(static_cast<real>(cSingle.lj2));
        const D lj3S(static_cast<real>(cSingle.lj3));
        const D lj4S(static_cast<real>(cSingle.lj4));
        const D eshS(static_cast<real>(cSingle.eshift));
        // Same accumulation contract as computeSimdImpl: double tier
        // keeps slice-long lane stripes, float tiers flush a per-i-row
        // stripe into the tier's acc scalar.
        D energyAcc(real(0));
        D virialAcc(real(0));
        acc energyRows = acc(0);
        acc virialRows = acc(0);
        for (std::size_t ic = sliceBegin; ic < sliceEnd; ++ic) {
            const std::uint32_t pairBegin = offsets[ic];
            const std::uint32_t pairEnd = offsets[ic + 1];
            for (std::size_t mm = 0; mm < m; ++mm) {
                const std::uint32_t i = iAtoms[ic * m + mm];
                if (i == sentinel)
                    break; // sentinels only pad the last i-cluster
                const Vec3 xi = x[i];
                // Broadcast in `real`: static_cast rounds exactly as
                // the staging conversion, so i and j coordinates agree
                // bitwise with the padded kernel's records.
                const D xiX(static_cast<real>(xi.x));
                const D xiY(static_cast<real>(xi.y));
                const D xiZ(static_cast<real>(xi.z));
                const std::uint32_t rowBase =
                    kSingleType
                        ? 0
                        : static_cast<std::uint32_t>(type[i]) *
                              static_cast<std::uint32_t>(ntypes_ + 1);
                D fiX(real(0)), fiY(real(0)), fiZ(real(0));
                D rowEnergy(real(0));
                D rowVirial(real(0));
                D &eAcc = kDoubleTier ? energyAcc : rowEnergy;
                D &vAcc = kDoubleTier ? virialAcc : rowVirial;
                for (std::uint32_t p = pairBegin; p < pairEnd; ++p) {
                    const std::uint32_t slot = pairs[p] * W;
                    D xjX, xjY, xjZ;
                    loadXyzRun(xpk, slot, xjX, xjY, xjZ);
                    const D dx = xiX - xjX;
                    const D dy = xiY - xjY;
                    const D dz = xiZ - xjZ;
                    const D r2 = D::fma(dz, dz, D::fma(dy, dy, dx * dx));
                    // The self lane (i sits in its own j-cluster) has
                    // r2 = 0 and must be masked by id, not distance;
                    // other members of i's own cluster are legitimate
                    // partners (each visits the pair from its row).
                    const I ids = I::load(jAtoms + slot);
                    const M mask =
                        M::fromIndexEQ(ids, i).andnot(r2 < cutSqV);
                    D lj1, lj2, lj3, lj4, esh;
                    if constexpr (kSingleType) {
                        lj1 = lj1S; lj2 = lj2S; lj3 = lj3S; lj4 = lj4S;
                        esh = eshS;
                    } else {
                        const I cidx =
                            (I::gather32(type, ids) + rowBase) *
                            kCoeffStride;
                        lj1 = D::gather(coeffBase, cidx);
                        lj2 = D::gather(coeffBase, cidx + 1u);
                        lj3 = D::gather(coeffBase, cidx + 2u);
                        lj4 = D::gather(coeffBase, cidx + 3u);
                        esh = D::gather(coeffBase, cidx + 4u);
                    }
                    const D r2inv = D(real(1)) / r2;
                    const D r6inv = r2inv * r2inv * r2inv;
                    // maskZero keeps the self lane's inf/nan factors
                    // out of the live lanes, exactly like the padded
                    // kernel's rejected lanes.
                    const D forcelj = D::maskZero(
                        mask, r6inv * D::fms(lj1, r6inv, lj2) * r2inv);
                    fiX = D::fma(dx, forcelj, fiX);
                    fiY = D::fma(dy, forcelj, fiY);
                    fiZ = D::fma(dz, forcelj, fiZ);
                    eAcc += D::maskZero(
                        mask,
                        D::fms(r6inv, D::fms(lj3, r6inv, lj4), esh));
                    vAcc = D::fma(forcelj, r2, vAcc);
                }
                real rx, ry, rz;
                sumXyz(fiX, fiY, fiZ, rx, ry, rz);
                // Forces go only to i rows and i-clusters partition the
                // owned atoms across slices, so these direct writes are
                // race-free and bitwise independent of the thread count.
                f[i].x += rx;
                f[i].y += ry;
                f[i].z += rz;
                if constexpr (!kDoubleTier) {
                    real re, rv;
                    sumPair(rowEnergy, rowVirial, re, rv);
                    energyRows += static_cast<acc>(re);
                    virialRows += static_cast<acc>(rv);
                }
            }
        }
        if constexpr (kDoubleTier) {
            energySlice[s] = pairScale * energyAcc.sum();
            virialSlice[s] = pairScale * virialAcc.sum();
        } else {
            energySlice[s] = pairScale * static_cast<double>(energyRows);
            virialSlice[s] = pairScale * static_cast<double>(virialRows);
        }
    });
    for (int s = 0; s < slices.count(); ++s) {
        energy_ += energySlice[s];
        virial_ += virialSlice[s];
    }
}

} // namespace mdbench
