#include "forcefield/pair_lj_cut.h"

#include <array>
#include <cmath>

#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"

namespace mdbench {

PairLJCut::PairLJCut(int ntypes, double cut, bool shift)
    : ntypes_(ntypes), cutoff_(cut), shift_(shift),
      coeffs_(static_cast<std::size_t>(ntypes + 1) * (ntypes + 1))
{
    require(ntypes >= 1, "lj/cut needs at least one type");
    require(cut > 0.0, "lj/cut cutoff must be positive");
}

PairLJCut::Coeff &
PairLJCut::coeff(int typeA, int typeB)
{
    return coeffs_[static_cast<std::size_t>(typeA) * (ntypes_ + 1) + typeB];
}

const PairLJCut::Coeff &
PairLJCut::coeff(int typeA, int typeB) const
{
    return coeffs_[static_cast<std::size_t>(typeA) * (ntypes_ + 1) + typeB];
}

void
PairLJCut::precompute(Coeff &c) const
{
    // Explicit multiplies, not std::pow(x, 6): integer powers keep the
    // coefficients bitwise-stable across libm versions.
    const double s2 = c.sigma * c.sigma;
    const double s6 = s2 * s2 * s2;
    const double s12 = s6 * s6;
    c.lj1 = 48.0 * c.epsilon * s12;
    c.lj2 = 24.0 * c.epsilon * s6;
    c.lj3 = 4.0 * c.epsilon * s12;
    c.lj4 = 4.0 * c.epsilon * s6;
    if (shift_) {
        const double rc2 = cutoff_ * cutoff_;
        const double rc6 = rc2 * rc2 * rc2;
        c.eshift = c.lj3 / (rc6 * rc6) - c.lj4 / rc6;
    } else {
        c.eshift = 0.0;
    }
    c.set = true;
}

void
PairLJCut::setCoeff(int typeA, int typeB, double epsilon, double sigma)
{
    require(typeA >= 1 && typeA <= ntypes_ && typeB >= 1 && typeB <= ntypes_,
            "lj/cut type out of range");
    Coeff c;
    c.epsilon = epsilon;
    c.sigma = sigma;
    precompute(c);
    coeff(typeA, typeB) = c;
    coeff(typeB, typeA) = c;
}

void
PairLJCut::mix(MixRule rule)
{
    for (int a = 1; a <= ntypes_; ++a) {
        for (int b = a + 1; b <= ntypes_; ++b) {
            if (coeff(a, b).set)
                continue;
            const Coeff &ca = coeff(a, a);
            const Coeff &cb = coeff(b, b);
            require(ca.set && cb.set,
                    "cannot mix: diagonal coefficients missing");
            const double eps = std::sqrt(ca.epsilon * cb.epsilon);
            const double sigma = rule == MixRule::Arithmetic
                                     ? 0.5 * (ca.sigma + cb.sigma)
                                     : std::sqrt(ca.sigma * cb.sigma);
            setCoeff(a, b, eps, sigma);
        }
    }
}

void
PairLJCut::compute(Simulation &sim, const NeighborList &list)
{
    if (ntypes_ == 1)
        computeImpl<true>(sim, list);
    else
        computeImpl<false>(sim, list);
}

template <bool kSingleType>
void
PairLJCut::computeImpl(Simulation &sim, const NeighborList &list)
{
    TraceScope trace("pair", "lj/cut");
    counterAdd(Counter::PairComputes);
    counterAdd(Counter::PairInteractions, list.pairCount());
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    const double cutSq = cutoff_ * cutoff_;
    const std::size_t nlocal = atoms.nlocal();
    // Full lists visit each pair twice; halve shared accumulators and
    // skip the j-side force update (f[i] is then the only force write,
    // so no reduction scratch is needed).
    const bool half = !list.full;
    const double pairScale = half ? 1.0 : 0.5;

    ThreadPool &pool = ThreadPool::global();
    const SliceRange slices(0, nlocal, forceKernelGrain(nlocal));
    std::array<double, SliceRange::kMaxSlices> energySlice{};
    std::array<double, SliceRange::kMaxSlices> virialSlice{};

    const Vec3 *x = atoms.x.data();
    const int *type = atoms.type.data();
    const Coeff *coeffs = coeffs_.data();
    const Coeff cSingle = coeff(1, 1);
    Vec3 *f = atoms.f.data();
    // For half lists every force write — the i-side row sums as well as
    // the j-side pair terms — goes through the reduction scratch, so
    // each f entry receives exactly the per-slice partial sums that
    // runAndReduce folds in ascending slice order. buffer is -1 on the
    // full-list path, where f[i] is the only write and needs no
    // scratch.
    auto kernel = [&](std::size_t sliceBegin, std::size_t sliceEnd, int s,
                      int buffer) {
        ReduceScratch<Vec3>::Accumulator fw;
        if (half)
            fw = fscratch_.acc(buffer);
        double energy = 0.0;
        double virial = 0.0;
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            const Vec3 xi = x[i];
            // One 2-D table row per i, not one lookup per pair: the
            // row base replaces the per-pair ti * (ntypes + 1) index
            // arithmetic with a plain type[j] offset.
            const Coeff *row =
                kSingleType ? nullptr
                            : coeffs + static_cast<std::size_t>(type[i]) *
                                           (ntypes_ + 1);
            Vec3 fi{};
            const auto [begin, end] = list.range(i);
            for (std::uint32_t k = begin; k < end; ++k) {
                const std::uint32_t j = list.neighbors[k];
                const Vec3 delta = xi - x[j];
                const double r2 = delta.normSq();
                if (r2 >= cutSq)
                    continue;
                const Coeff &c = kSingleType ? cSingle : row[type[j]];
                const double r2inv = 1.0 / r2;
                const double r6inv = r2inv * r2inv * r2inv;
                const double forcelj =
                    r6inv * (c.lj1 * r6inv - c.lj2) * r2inv;
                const Vec3 fpair = delta * forcelj;
                fi += fpair;
                if (half)
                    fw.at(j) -= fpair;
                energy += pairScale *
                          (r6inv * (c.lj3 * r6inv - c.lj4) - c.eshift);
                virial += pairScale * forcelj * r2;
            }
            if (half)
                fw.at(i) += fi;
            else
                f[i] += fi;
        }
        energySlice[s] = energy;
        virialSlice[s] = virial;
    };
    if (half) {
        fscratch_.runAndReduce(pool, slices, atoms.nall(), f, kernel);
    } else {
        pool.run(slices, [&](std::size_t begin, std::size_t end, int s) {
            kernel(begin, end, s, -1);
        });
    }
    for (int s = 0; s < slices.count(); ++s) {
        energy_ += energySlice[s];
        virial_ += virialSlice[s];
    }
}

} // namespace mdbench
