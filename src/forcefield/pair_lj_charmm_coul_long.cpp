#include "forcefield/pair_lj_charmm_coul_long.h"

#include <array>
#include <bit>
#include <cmath>
#include <type_traits>

#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/simd.h"

namespace mdbench {

namespace {
constexpr double kSqrtPiInv2 = 1.1283791670955126; // 2 / sqrt(pi)
} // namespace

PairLJCharmmCoulLong::PairLJCharmmCoulLong(int ntypes, double ljInner,
                                           double ljOuter, double coulCut)
    : ntypes_(ntypes), ljInner_(ljInner), ljOuter_(ljOuter),
      coulCut_(coulCut),
      epsilon_(static_cast<std::size_t>(ntypes) + 1, 0.0),
      sigma_(static_cast<std::size_t>(ntypes) + 1, 0.0),
      coeffs_(static_cast<std::size_t>(ntypes + 1) * (ntypes + 1))
{
    require(ntypes >= 1, "need at least one type");
    require(ljInner > 0.0 && ljOuter > ljInner,
            "charmm switching range must satisfy 0 < inner < outer");
    require(coulCut > 0.0, "coulomb cutoff must be positive");
}

double
PairLJCharmmCoulLong::cutoff() const
{
    return std::max(ljOuter_, coulCut_);
}

void
PairLJCharmmCoulLong::setCoeff(int type, double epsilon, double sigma)
{
    require(type >= 1 && type <= ntypes_, "type out of range");
    epsilon_[type] = epsilon;
    sigma_[type] = sigma;
    coeffsBuilt_ = false;
}

void
PairLJCharmmCoulLong::buildCoeffs()
{
    for (int a = 1; a <= ntypes_; ++a) {
        for (int b = 1; b <= ntypes_; ++b) {
            // Arithmetic (Lorentz-Berthelot) mixing.
            const double eps = std::sqrt(epsilon_[a] * epsilon_[b]);
            const double sigma = 0.5 * (sigma_[a] + sigma_[b]);
            // Explicit multiplies, not std::pow(x, 6): integer powers
            // keep the coefficients bitwise-stable across libm versions.
            const double s2 = sigma * sigma;
            const double s6 = s2 * s2 * s2;
            const double s12 = s6 * s6;
            Coeff c;
            c.lj1 = 48.0 * eps * s12;
            c.lj2 = 24.0 * eps * s6;
            c.lj3 = 4.0 * eps * s12;
            c.lj4 = 4.0 * eps * s6;
            coeffs_[static_cast<std::size_t>(a) * (ntypes_ + 1) + b] = c;
        }
    }
    // Float mirror for the float-tier gathers: same element stride,
    // each coefficient cast exactly once.
    constexpr std::size_t stride = sizeof(Coeff) / sizeof(double);
    coeffsF_.assign(coeffs_.size() * stride, 0.0f);
    for (std::size_t e = 0; e < coeffs_.size(); ++e) {
        const double *src = reinterpret_cast<const double *>(&coeffs_[e]);
        for (std::size_t d = 0; d < stride; ++d)
            coeffsF_[e * stride + d] = static_cast<float>(src[d]);
    }
    coeffsBuilt_ = true;
}

const PairLJCharmmCoulLong::Coeff &
PairLJCharmmCoulLong::coeff(int typeA, int typeB) const
{
    return coeffs_[static_cast<std::size_t>(typeA) * (ntypes_ + 1) + typeB];
}

void
PairLJCharmmCoulLong::compute(Simulation &sim, const NeighborList &list)
{
    if (ntypes_ == 1)
        dispatch<true>(sim, list);
    else
        dispatch<false>(sim, list);
}

template <bool kSingleType>
void
PairLJCharmmCoulLong::dispatch(Simulation &sim, const NeighborList &list)
{
    // The tier recorded at packing time governs: a knob flip between
    // build and compute must not mismatch the padded geometry.
    switch (list.packTier) {
      case Precision::Mixed:
        return dispatchWidth<PrecisionMixed, kSingleType>(sim, list);
      case Precision::Single:
        return dispatchWidth<PrecisionSingle, kSingleType>(sim, list);
      default:
        return dispatchWidth<PrecisionDouble, kSingleType>(sim, list);
    }
}

template <typename P, bool kSingleType>
void
PairLJCharmmCoulLong::dispatchWidth(Simulation &sim,
                                    const NeighborList &list)
{
    switch (list.padWidth) {
      case 1: return computeSimdImpl<P, 1, kSingleType>(sim, list);
      case 2: return computeSimdImpl<P, 2, kSingleType>(sim, list);
      case 4: return computeSimdImpl<P, 4, kSingleType>(sim, list);
      case 8: return computeSimdImpl<P, 8, kSingleType>(sim, list);
      case 16: return computeSimdImpl<P, 16, kSingleType>(sim, list);
      default: return computeImpl<kSingleType>(sim, list);
    }
}

template <bool kSingleType>
void
PairLJCharmmCoulLong::computeImpl(Simulation &sim, const NeighborList &list)
{
    ensure(!list.full, "lj/charmm/coul/long requires a half list");
    TraceScope trace("pair", "lj/charmm/coul/long");
    counterAdd(Counter::PairComputes);
    counterAdd(Counter::PairInteractions, list.pairCount());
    if (!coeffsBuilt_)
        buildCoeffs();
    resetAccumulators();
    ecoul_ = 0.0;
    evdwl_ = 0.0;

    AtomStore &atoms = sim.atoms;
    const double qqr2e = sim.units.qqr2e;
    const double g = sim.kspace ? sim.kspace->splittingParameter() : 0.0;
    const double cutLJSq = ljOuter_ * ljOuter_;
    const double cutLJInnerSq = ljInner_ * ljInner_;
    const double cutCoulSq = coulCut_ * coulCut_;
    const double cutAllSq = std::max(cutLJSq, cutCoulSq);
    const double switchWidth = cutLJSq - cutLJInnerSq;
    const double denomLJ = switchWidth * switchWidth * switchWidth;

    const std::size_t nlocal = atoms.nlocal();
    ThreadPool &pool = ThreadPool::global();
    const SliceRange slices(0, nlocal, forceKernelGrain(nlocal));
    std::array<double, SliceRange::kMaxSlices> ecoulSlice{};
    std::array<double, SliceRange::kMaxSlices> evdwlSlice{};
    std::array<double, SliceRange::kMaxSlices> virialSlice{};

    const Vec3 *x = atoms.x.data();
    const int *type = atoms.type.data();
    const double *q = atoms.q.data();
    const Coeff *coeffs = coeffs_.data();
    const Coeff cSingle = coeff(1, 1);
    // Every force write goes through the reduction scratch (see
    // PairLJCut::compute); runAndReduce folds the per-slice partial
    // sums into f in ascending slice order.
    fscratch_.runAndReduce(pool, slices, atoms.nall(), atoms.f.data(), [&](
        std::size_t sliceBegin, std::size_t sliceEnd, int s, int buffer) {
        auto fw = fscratch_.acc(buffer);
        double ecoul = 0.0;
        double evdwl = 0.0;
        double virial = 0.0;
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            const Vec3 xi = x[i];
            const double qi = q[i];
            // One 2-D table row per i, not one lookup per pair (see
            // PairLJCut::computeImpl).
            const Coeff *row =
                kSingleType ? nullptr
                            : coeffs + static_cast<std::size_t>(type[i]) *
                                           (ntypes_ + 1);
            Vec3 fi{};
            const auto [begin, end] = list.range(i);
            for (std::uint32_t k = begin; k < end; ++k) {
                const std::uint32_t j = list.neighbors[k];
                const Vec3 delta = xi - x[j];
                const double rsq = delta.normSq();
                if (rsq >= cutAllSq)
                    continue;
                const double r2inv = 1.0 / rsq;

                double forcecoul = 0.0;
                if (rsq < cutCoulSq && qi != 0.0 && q[j] != 0.0) {
                    const double r = std::sqrt(rsq);
                    const double grij = g * r;
                    const double expm2 = std::exp(-grij * grij);
                    const double erfcVal = std::erfc(grij);
                    const double prefactor = qqr2e * qi * q[j] / r;
                    forcecoul =
                        prefactor * (erfcVal + kSqrtPiInv2 * grij * expm2);
                    ecoul += prefactor * erfcVal;
                }

                double forcelj = 0.0;
                if (rsq < cutLJSq) {
                    const Coeff &c = kSingleType ? cSingle : row[type[j]];
                    const double r6inv = r2inv * r2inv * r2inv;
                    forcelj = r6inv * (c.lj1 * r6inv - c.lj2);
                    double philj = r6inv * (c.lj3 * r6inv - c.lj4);
                    if (rsq > cutLJInnerSq) {
                        const double rsw = cutLJSq - rsq;
                        const double switch1 =
                            rsw * rsw * (cutLJSq + 2.0 * rsq -
                                         3.0 * cutLJInnerSq) / denomLJ;
                        const double switch2 = 12.0 * rsq * rsw *
                                               (rsq - cutLJInnerSq) /
                                               denomLJ;
                        forcelj = forcelj * switch1 + philj * switch2;
                        philj *= switch1;
                    }
                    evdwl += philj;
                }

                const double fpair = (forcecoul + forcelj) * r2inv;
                const Vec3 fvec = delta * fpair;
                fi += fvec;
                fw.at(j) -= fvec;
                virial += fpair * rsq;
            }
            fw.at(i) += fi;
        }
        ecoulSlice[s] = ecoul;
        evdwlSlice[s] = evdwl;
        virialSlice[s] = virial;
    });

    for (int s = 0; s < slices.count(); ++s) {
        ecoul_ += ecoulSlice[s];
        evdwl_ += evdwlSlice[s];
        virial_ += virialSlice[s];
    }
    energy_ = ecoul_ + evdwl_;
}

template <typename P, int W, bool kSingleType>
void
PairLJCharmmCoulLong::computeSimdImpl(Simulation &sim,
                                      const NeighborList &list)
{
    using real = typename P::real;
    using acc = typename P::acc;
    constexpr bool kDoubleTier = std::is_same_v<real, double>;

    static_assert(sizeof(Coeff) == 4 * sizeof(double));
    static_assert(sizeof(Vec3) == 3 * sizeof(double));
    [[maybe_unused]] constexpr std::uint32_t kCoeffStride =
        sizeof(Coeff) / sizeof(double);

    ensure(!list.full, "lj/charmm/coul/long requires a half list");
    TraceScope trace("pair", "lj/charmm/coul/long");
    TraceScope simdTrace("pair", "simd");
    counterAdd(Counter::PairComputes);
    counterAdd(Counter::PairInteractions, list.pairCount());
    countSimdLaneUse(list);
    if constexpr (!kDoubleTier)
        counterAdd(Counter::PairFloatComputes);
    if (!coeffsBuilt_)
        buildCoeffs();
    resetAccumulators();
    ecoul_ = 0.0;
    evdwl_ = 0.0;

    AtomStore &atoms = sim.atoms;
    const double qqr2e = sim.units.qqr2e;
    const double g = sim.kspace ? sim.kspace->splittingParameter() : 0.0;
    const double cutLJSq = ljOuter_ * ljOuter_;
    const double cutLJInnerSq = ljInner_ * ljInner_;
    const double cutCoulSq = coulCut_ * coulCut_;
    const double cutAllSq = std::max(cutLJSq, cutCoulSq);
    const double switchWidth = cutLJSq - cutLJInnerSq;
    const double denomLJ = switchWidth * switchWidth * switchWidth;

    const std::size_t nlocal = atoms.nlocal();
    ThreadPool &pool = ThreadPool::global();
    const SliceRange slices(0, nlocal, forceKernelGrain(nlocal));
    std::array<double, SliceRange::kMaxSlices> ecoulSlice{};
    std::array<double, SliceRange::kMaxSlices> evdwlSlice{};
    std::array<double, SliceRange::kMaxSlices> virialSlice{};

    using D = Simd<real, W>;
    using I = SimdIndex<W>;
    using M = SimdMask<real, W>;

    const int *type = atoms.type.data();
    const double *q = atoms.q.data();
    const real *coeffBase;
    if constexpr (kDoubleTier)
        coeffBase = reinterpret_cast<const double *>(coeffs_.data());
    else
        coeffBase = coeffsF_.data();
    const Coeff cSingle = coeff(1, 1);
    const std::uint32_t *packed = list.packedNeighbors.data();
    Vec3 *f = atoms.f.data();

    // Stage positions + charge as 4-element [x, y, z, q] records in the
    // tier's `real` type (md/xpack.h) so the inner loop uses transpose
    // loads instead of four hardware gathers per group — and float
    // tiers convert coordinates and charges exactly once per compute.
    const std::size_t nallPad = atoms.nall() + atoms.npad();
    const real *xpackPtr = xpack<real>().stage(atoms.x.data(), q, nallPad);

    fscratch_.runAndReduce(pool, slices, atoms.nall(), f, [&](
        std::size_t sliceBegin, std::size_t sliceEnd, int s, int buffer) {
        auto fw = fscratch_.acc(buffer);
        // Everything the inner loop touches lives in lambda-locals, not
        // reference captures: the force scatters store through double
        // pointers, and values reached through the closure would have
        // to be conservatively reloaded after every such store (see
        // PairLJCut).
        const real *const xpk = xpackPtr;
        const std::uint32_t *const pk = packed;
        const D cutAllSqV(static_cast<real>(cutAllSq));
        const D cutLJSqV(static_cast<real>(cutLJSq));
        const D cutLJInnerSqV(static_cast<real>(cutLJInnerSq));
        const D cutCoulSqV(static_cast<real>(cutCoulSq));
        // 3 * cutLJInnerSq and the switch-branch constants, formed with
        // the same products the scalar expressions contain (then cast
        // once on float tiers).
        const D threeInnerV(static_cast<real>(3.0 * cutLJInnerSq));
        const D denomLJV(static_cast<real>(denomLJ));
        const D gV(static_cast<real>(g));
        const D kSqrtPiInv2V(static_cast<real>(kSqrtPiInv2));
        const D two(real(2));
        const D twelve(real(12));
        const D zero(real(0));
        const D lj1S(static_cast<real>(cSingle.lj1));
        const D lj2S(static_cast<real>(cSingle.lj2));
        const D lj3S(static_cast<real>(cSingle.lj3));
        const D lj4S(static_cast<real>(cSingle.lj4));
        // Energy/virial accumulation (see PairLJCut): the double tier
        // keeps slice-long lane-striped accumulators — at W = 1 exactly
        // the scalar kernel's running sums. Float tiers reset the lane
        // stripes every row and flush the row sum into `acc` scalars.
        D ecoulAcc(real(0));
        D evdwlAcc(real(0));
        D virialAcc(real(0));
        acc ecoulRows = acc(0);
        acc evdwlRows = acc(0);
        acc virialRows = acc(0);
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            const real *xiRec = xpk + 4 * i;
            // Charge in full precision from the source array (the pack
            // record's w narrows on float tiers): (qqr2e * qi) is the
            // exact prefix product of the scalar left-associated
            // prefactor, cast once.
            const double qi = q[i];
            const bool qiNonzero = qi != 0.0;
            const D qqr2eQiV(static_cast<real>(qqr2e * qi));
            const std::uint32_t rowBase =
                kSingleType ? 0
                            : static_cast<std::uint32_t>(type[i]) *
                                  static_cast<std::uint32_t>(ntypes_ + 1);
            const D xiX(xiRec[0]), xiY(xiRec[1]), xiZ(xiRec[2]);
            D fiX(real(0)), fiY(real(0)), fiZ(real(0));
            D rowEcoul(real(0));
            D rowEvdwl(real(0));
            D rowVirial(real(0));
            D &ecAcc = kDoubleTier ? ecoulAcc : rowEcoul;
            D &evAcc = kDoubleTier ? evdwlAcc : rowEvdwl;
            D &viAcc = kDoubleTier ? virialAcc : rowVirial;
            const auto [begin, end] = list.packedRange(i);
            for (std::uint32_t k = begin; k < end; k += W) {
                D xjX, xjY, xjZ, qj;
                loadXyzw(xpk, pk + k, xjX, xjY, xjZ, qj);
                const D dx = xiX - xjX;
                const D dy = xiY - xjY;
                const D dz = xiZ - xjZ;
                // fma association matches the scalar sum bitwise on the
                // generic backend (addition order is commutative).
                const D rsq = D::fma(dz, dz, D::fma(dy, dy, dx * dx));
                // Scalar `continue`s past cutAllSq; every term below is
                // masked through this (or a tighter) cutoff mask, so
                // those lanes and the sentinel contribute exact zeros.
                const M anyMask = rsq < cutAllSqV;
                const int anyBits = anyMask.bits();
                // All lanes rejected (or pure padding): every term below
                // would be an exact zero, so skipping is bitwise free.
                if (anyBits == 0)
                    continue;
                const D r2inv = D(real(1)) / rsq;

                D forcecoul = zero;
                if (qiNonzero) {
                    const M coulMask =
                        (rsq < cutCoulSqV) & (qj != zero);
                    const D r = D::sqrt(rsq);
                    const D grij = gV * r;
                    // erfc/exp have no vector form: evaluate them per
                    // active lane, ascending as the scalar loop does
                    // (inactive lanes skip libm exactly as the scalar
                    // branch does, and stay exact zeros). Float tiers
                    // resolve to the float libm overloads.
                    alignas(64) real grijArr[W];
                    real erfcArr[W] = {};
                    real expm2Arr[W] = {};
                    grij.storeu(grijArr);
                    for (int rest = coulMask.bits(); rest;
                         rest &= rest - 1) {
                        const int l = std::countr_zero(
                            static_cast<unsigned>(rest));
                        const real grijL = grijArr[l];
                        expm2Arr[l] = std::exp(-grijL * grijL);
                        erfcArr[l] = std::erfc(grijL);
                    }
                    const D expm2 = D::loadu(expm2Arr);
                    const D erfcV = D::loadu(erfcArr);
                    const D prefactor = qqr2eQiV * qj / r;
                    forcecoul = D::select(
                        coulMask,
                        prefactor * (erfcV + kSqrtPiInv2V * grij * expm2),
                        zero);
                    ecAcc +=
                        D::select(coulMask, prefactor * erfcV, zero);
                }

                const M ljMask = rsq < cutLJSqV;
                D lj1, lj2, lj3, lj4;
                if constexpr (kSingleType) {
                    lj1 = lj1S; lj2 = lj2S; lj3 = lj3S; lj4 = lj4S;
                } else {
                    const I j = I::load(pk + k);
                    const I cidx =
                        (I::gather32(type, j) + rowBase) * kCoeffStride;
                    lj1 = D::gather(coeffBase, cidx);
                    lj2 = D::gather(coeffBase, cidx + 1u);
                    lj3 = D::gather(coeffBase, cidx + 2u);
                    lj4 = D::gather(coeffBase, cidx + 3u);
                }
                const D r6inv = r2inv * r2inv * r2inv;
                D forcelj = r6inv * (lj1 * r6inv - lj2);
                D philj = r6inv * (lj3 * r6inv - lj4);
                // Switching region: compute the switched values for
                // every lane and select; out-of-range lanes are finite
                // (the pad slot sits ~1e6 box lengths out, far below
                // the overflow threshold of these polynomials).
                const M switchMask = rsq > cutLJInnerSqV;
                const D rsw = cutLJSqV - rsq;
                const D switch1 = rsw * rsw *
                                  (cutLJSqV + two * rsq - threeInnerV) /
                                  denomLJV;
                const D switch2 =
                    twelve * rsq * rsw * (rsq - cutLJInnerSqV) / denomLJV;
                forcelj = D::select(
                    switchMask, forcelj * switch1 + philj * switch2,
                    forcelj);
                philj = D::select(switchMask, philj * switch1, philj);
                forcelj = D::select(ljMask, forcelj, zero);
                evAcc += D::select(ljMask, philj, zero);

                const D fpair = (forcecoul + forcelj) * r2inv;
                const D fpx = dx * fpair;
                const D fpy = dy * fpair;
                const D fpz = dz * fpair;
                fiX = D::select(anyMask, fiX + fpx, fiX);
                fiY = D::select(anyMask, fiY + fpy, fiY);
                fiZ = D::select(anyMask, fiZ + fpz, fiZ);
                // Newton scatter: pair terms spilled once, set-bit walk
                // ascending = the scalar kernel's ascending-k order.
                // Float-tier pair terms widen here, once per store.
                alignas(64) real sx[W], sy[W], sz[W];
                fpx.storeu(sx);
                fpy.storeu(sy);
                fpz.storeu(sz);
                for (int rest = anyBits; rest; rest &= rest - 1) {
                    const int l =
                        std::countr_zero(static_cast<unsigned>(rest));
                    Vec3 &fj = fw.at(pk[k + l]);
                    fj.x -= sx[l];
                    fj.y -= sy[l];
                    fj.z -= sz[l];
                }
                viAcc +=
                    D::select(anyMask, fpair * rsq, zero);
            }
            // Row force sums widen into the double scratch arrays
            // (float tiers: the once-per-atom widening).
            Vec3 &fi = fw.at(i);
            fi.x += fiX.sum();
            fi.y += fiY.sum();
            fi.z += fiZ.sum();
            if constexpr (!kDoubleTier) {
                ecoulRows += static_cast<acc>(rowEcoul.sum());
                evdwlRows += static_cast<acc>(rowEvdwl.sum());
                virialRows += static_cast<acc>(rowVirial.sum());
            }
        }
        if constexpr (kDoubleTier) {
            ecoulSlice[s] = ecoulAcc.sum();
            evdwlSlice[s] = evdwlAcc.sum();
            virialSlice[s] = virialAcc.sum();
        } else {
            ecoulSlice[s] = static_cast<double>(ecoulRows);
            evdwlSlice[s] = static_cast<double>(evdwlRows);
            virialSlice[s] = static_cast<double>(virialRows);
        }
    });

    for (int s = 0; s < slices.count(); ++s) {
        ecoul_ += ecoulSlice[s];
        evdwl_ += evdwlSlice[s];
        virial_ += virialSlice[s];
    }
    energy_ = ecoul_ + evdwl_;
}

} // namespace mdbench
