#include "forcefield/pair_lj_charmm_coul_long.h"

#include <array>
#include <cmath>

#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"

namespace mdbench {

namespace {
constexpr double kSqrtPiInv2 = 1.1283791670955126; // 2 / sqrt(pi)
} // namespace

PairLJCharmmCoulLong::PairLJCharmmCoulLong(int ntypes, double ljInner,
                                           double ljOuter, double coulCut)
    : ntypes_(ntypes), ljInner_(ljInner), ljOuter_(ljOuter),
      coulCut_(coulCut),
      epsilon_(static_cast<std::size_t>(ntypes) + 1, 0.0),
      sigma_(static_cast<std::size_t>(ntypes) + 1, 0.0),
      coeffs_(static_cast<std::size_t>(ntypes + 1) * (ntypes + 1))
{
    require(ntypes >= 1, "need at least one type");
    require(ljInner > 0.0 && ljOuter > ljInner,
            "charmm switching range must satisfy 0 < inner < outer");
    require(coulCut > 0.0, "coulomb cutoff must be positive");
}

double
PairLJCharmmCoulLong::cutoff() const
{
    return std::max(ljOuter_, coulCut_);
}

void
PairLJCharmmCoulLong::setCoeff(int type, double epsilon, double sigma)
{
    require(type >= 1 && type <= ntypes_, "type out of range");
    epsilon_[type] = epsilon;
    sigma_[type] = sigma;
    coeffsBuilt_ = false;
}

void
PairLJCharmmCoulLong::buildCoeffs()
{
    for (int a = 1; a <= ntypes_; ++a) {
        for (int b = 1; b <= ntypes_; ++b) {
            // Arithmetic (Lorentz-Berthelot) mixing.
            const double eps = std::sqrt(epsilon_[a] * epsilon_[b]);
            const double sigma = 0.5 * (sigma_[a] + sigma_[b]);
            // Explicit multiplies, not std::pow(x, 6): integer powers
            // keep the coefficients bitwise-stable across libm versions.
            const double s2 = sigma * sigma;
            const double s6 = s2 * s2 * s2;
            const double s12 = s6 * s6;
            Coeff c;
            c.lj1 = 48.0 * eps * s12;
            c.lj2 = 24.0 * eps * s6;
            c.lj3 = 4.0 * eps * s12;
            c.lj4 = 4.0 * eps * s6;
            coeffs_[static_cast<std::size_t>(a) * (ntypes_ + 1) + b] = c;
        }
    }
    coeffsBuilt_ = true;
}

const PairLJCharmmCoulLong::Coeff &
PairLJCharmmCoulLong::coeff(int typeA, int typeB) const
{
    return coeffs_[static_cast<std::size_t>(typeA) * (ntypes_ + 1) + typeB];
}

void
PairLJCharmmCoulLong::compute(Simulation &sim, const NeighborList &list)
{
    if (ntypes_ == 1)
        computeImpl<true>(sim, list);
    else
        computeImpl<false>(sim, list);
}

template <bool kSingleType>
void
PairLJCharmmCoulLong::computeImpl(Simulation &sim, const NeighborList &list)
{
    ensure(!list.full, "lj/charmm/coul/long requires a half list");
    TraceScope trace("pair", "lj/charmm/coul/long");
    counterAdd(Counter::PairComputes);
    counterAdd(Counter::PairInteractions, list.pairCount());
    if (!coeffsBuilt_)
        buildCoeffs();
    resetAccumulators();
    ecoul_ = 0.0;
    evdwl_ = 0.0;

    AtomStore &atoms = sim.atoms;
    const double qqr2e = sim.units.qqr2e;
    const double g = sim.kspace ? sim.kspace->splittingParameter() : 0.0;
    const double cutLJSq = ljOuter_ * ljOuter_;
    const double cutLJInnerSq = ljInner_ * ljInner_;
    const double cutCoulSq = coulCut_ * coulCut_;
    const double cutAllSq = std::max(cutLJSq, cutCoulSq);
    const double switchWidth = cutLJSq - cutLJInnerSq;
    const double denomLJ = switchWidth * switchWidth * switchWidth;

    const std::size_t nlocal = atoms.nlocal();
    ThreadPool &pool = ThreadPool::global();
    const SliceRange slices(0, nlocal, forceKernelGrain(nlocal));
    std::array<double, SliceRange::kMaxSlices> ecoulSlice{};
    std::array<double, SliceRange::kMaxSlices> evdwlSlice{};
    std::array<double, SliceRange::kMaxSlices> virialSlice{};

    const Vec3 *x = atoms.x.data();
    const int *type = atoms.type.data();
    const double *q = atoms.q.data();
    const Coeff *coeffs = coeffs_.data();
    const Coeff cSingle = coeff(1, 1);
    // Every force write goes through the reduction scratch (see
    // PairLJCut::compute); runAndReduce folds the per-slice partial
    // sums into f in ascending slice order.
    fscratch_.runAndReduce(pool, slices, atoms.nall(), atoms.f.data(), [&](
        std::size_t sliceBegin, std::size_t sliceEnd, int s, int buffer) {
        auto fw = fscratch_.acc(buffer);
        double ecoul = 0.0;
        double evdwl = 0.0;
        double virial = 0.0;
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            const Vec3 xi = x[i];
            const double qi = q[i];
            // One 2-D table row per i, not one lookup per pair (see
            // PairLJCut::computeImpl).
            const Coeff *row =
                kSingleType ? nullptr
                            : coeffs + static_cast<std::size_t>(type[i]) *
                                           (ntypes_ + 1);
            Vec3 fi{};
            const auto [begin, end] = list.range(i);
            for (std::uint32_t k = begin; k < end; ++k) {
                const std::uint32_t j = list.neighbors[k];
                const Vec3 delta = xi - x[j];
                const double rsq = delta.normSq();
                if (rsq >= cutAllSq)
                    continue;
                const double r2inv = 1.0 / rsq;

                double forcecoul = 0.0;
                if (rsq < cutCoulSq && qi != 0.0 && q[j] != 0.0) {
                    const double r = std::sqrt(rsq);
                    const double grij = g * r;
                    const double expm2 = std::exp(-grij * grij);
                    const double erfcVal = std::erfc(grij);
                    const double prefactor = qqr2e * qi * q[j] / r;
                    forcecoul =
                        prefactor * (erfcVal + kSqrtPiInv2 * grij * expm2);
                    ecoul += prefactor * erfcVal;
                }

                double forcelj = 0.0;
                if (rsq < cutLJSq) {
                    const Coeff &c = kSingleType ? cSingle : row[type[j]];
                    const double r6inv = r2inv * r2inv * r2inv;
                    forcelj = r6inv * (c.lj1 * r6inv - c.lj2);
                    double philj = r6inv * (c.lj3 * r6inv - c.lj4);
                    if (rsq > cutLJInnerSq) {
                        const double rsw = cutLJSq - rsq;
                        const double switch1 =
                            rsw * rsw * (cutLJSq + 2.0 * rsq -
                                         3.0 * cutLJInnerSq) / denomLJ;
                        const double switch2 = 12.0 * rsq * rsw *
                                               (rsq - cutLJInnerSq) /
                                               denomLJ;
                        forcelj = forcelj * switch1 + philj * switch2;
                        philj *= switch1;
                    }
                    evdwl += philj;
                }

                const double fpair = (forcecoul + forcelj) * r2inv;
                const Vec3 fvec = delta * fpair;
                fi += fvec;
                fw.at(j) -= fvec;
                virial += fpair * rsq;
            }
            fw.at(i) += fi;
        }
        ecoulSlice[s] = ecoul;
        evdwlSlice[s] = evdwl;
        virialSlice[s] = virial;
    });

    for (int s = 0; s < slices.count(); ++s) {
        ecoul_ += ecoulSlice[s];
        evdwl_ += evdwlSlice[s];
        virial_ += virialSlice[s];
    }
    energy_ = ecoul_ + evdwl_;
}

} // namespace mdbench
