#include "forcefield/pair_gran_hooke_history.h"

#include <cmath>

#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"

namespace mdbench {

PairGranHookeHistory::PairGranHookeHistory(double kn, double kt,
                                           double gamman, double gammat,
                                           double xmu, double maxDiameter)
    : kn_(kn), kt_(kt), gamman_(gamman), gammat_(gammat), xmu_(xmu),
      maxDiameter_(maxDiameter)
{
    require(kn > 0.0, "granular normal stiffness must be positive");
    require(maxDiameter > 0.0, "granular diameter must be positive");
}

std::uint64_t
PairGranHookeHistory::contactKey(std::int64_t tagI, std::int64_t tagJ)
{
    return (static_cast<std::uint64_t>(tagI) << 32) |
           static_cast<std::uint64_t>(tagJ);
}

void
PairGranHookeHistory::compute(Simulation &sim, const NeighborList &list)
{
    ensure(list.full, "gran/hooke/history requires a full neighbor list");
    TraceScope trace("pair", "gran/hooke/history");
    counterAdd(Counter::PairComputes);
    counterAdd(Counter::PairInteractions, list.pairCount());
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    const std::size_t nlocal = atoms.nlocal();
    const double dt = sim.dt;

    for (std::size_t i = 0; i < nlocal; ++i) {
        const Vec3 xi = atoms.x[i];
        const double ri = atoms.typeParams[atoms.type[i]].radius;
        const double mi = atoms.massOf(i);
        const auto [begin, end] = list.range(i);
        for (std::uint32_t k = begin; k < end; ++k) {
            const std::uint32_t j = list.neighbors[k];
            const double rj = atoms.typeParams[atoms.type[j]].radius;
            const Vec3 delta = xi - atoms.x[j];
            const double rsq = delta.normSq();
            const double sumRadius = ri + rj;
            const std::uint64_t key = contactKey(atoms.tag[i], atoms.tag[j]);
            if (rsq >= sumRadius * sumRadius) {
                shear_.erase(key);
                continue;
            }
            const double r = std::sqrt(rsq);
            const Vec3 n = delta / r;
            const double overlap = sumRadius - r;

            // Relative velocity of the two contact surfaces.
            const Vec3 vrel = atoms.v[i] - atoms.v[j];
            const double vn = vrel.dot(n);
            const Vec3 vNormal = n * vn;
            // Surface velocity from rotation: -(ri*wi + rj*wj) x n.
            const Vec3 wSum = atoms.omega[i] * ri + atoms.omega[j] * rj;
            const Vec3 vTangent = vrel - vNormal - wSum.cross(n);

            const double mj = atoms.massOf(j);
            const double meff = mi * mj / (mi + mj);

            // Normal: Hookean spring + velocity damping.
            const double fn = kn_ * overlap - gamman_ * meff * vn;

            // Tangential history spring.
            Vec3 &shear = shear_[key];
            shear += vTangent * dt;
            shear -= n * shear.dot(n); // keep it in the tangent plane
            Vec3 ft = shear * (-kt_) - vTangent * (gammat_ * meff);

            const double ftMag = ft.norm();
            const double cap = xmu_ * std::fabs(fn);
            if (ftMag > cap && ftMag > 0.0) {
                const double ratio = cap / ftMag;
                shear = (ft * ratio + vTangent * (gammat_ * meff)) *
                        (-1.0 / kt_);
                ft *= ratio;
            }

            const Vec3 force = n * fn + ft;
            atoms.f[i] += force;
            atoms.torque[i] += (n * (-ri)).cross(ft);

            // Each contact is visited from both sides: halve the shared
            // accumulators. The "energy" reported is the elastic energy
            // stored in the normal springs.
            energy_ += 0.25 * kn_ * overlap * overlap;
            virial_ += 0.5 * delta.dot(force);
        }
    }

    // Contacts whose partner migrated out of the neighbor list leave
    // stale history behind; cap memory by pruning occasionally.
    if (shear_.size() > 64 * (nlocal + 1))
        shear_.clear();
}

} // namespace mdbench
