/**
 * @file
 * Natural cubic spline over a uniform grid, used by the tabulated EAM
 * potential (LAMMPS funcfl-style interpolation).
 */

#ifndef MDBENCH_FORCEFIELD_SPLINE_H
#define MDBENCH_FORCEFIELD_SPLINE_H

#include <cstddef>
#include <vector>

namespace mdbench {

/**
 * Interpolates a function sampled at x_i = x0 + i * dx, providing value
 * and first derivative. Evaluation clamps to the tabulated range.
 */
class CubicSpline
{
  public:
    CubicSpline() = default;

    /** Build from samples @p y at spacing @p dx starting at @p x0. */
    CubicSpline(double x0, double dx, std::vector<double> y);

    /** Interpolated value at @p x. */
    double value(double x) const;

    /** Interpolated first derivative at @p x. */
    double derivative(double x) const;

    /** Value and derivative in one lookup. */
    void eval(double x, double &value, double &derivative) const;

    /** Upper end of the tabulated range. */
    double xMax() const { return x0_ + dx_ * (y_.empty() ? 0 : y_.size() - 1); }

    /**
     * Raw table view for vectorized evaluation (the SIMD EAM kernel
     * gathers knots directly). Pointers are borrowed: valid until the
     * spline is modified or destroyed. The element type follows the
     * precision policy's `real` (util/precision.h): double views
     * borrow the knot arrays directly, float views borrow the cached
     * once-cast mirrors.
     */
    template <typename T>
    struct ViewT
    {
        const T *y = nullptr; ///< knot values
        const T *m = nullptr; ///< knot second derivatives
        T x0 = T(0);          ///< first knot abscissa
        T dx = T(1);          ///< knot spacing
        std::size_t n = 0;    ///< knot count
    };

    using View = ViewT<double>;

    View
    view() const
    {
        return {y_.data(), m_.data(), x0_, dx_, y_.size()};
    }

    /**
     * Float-knot view for the float-tier SIMD kernels. Builds the
     * float mirrors of the knot arrays on first call (each knot cast
     * exactly once) and caches them for the spline's lifetime — the
     * knot arrays never change after construction.
     */
    ViewT<float>
    viewF()
    {
        if (yF_.size() != y_.size()) {
            yF_.assign(y_.begin(), y_.end());
            mF_.assign(m_.begin(), m_.end());
        }
        return {yF_.data(), mF_.data(), static_cast<float>(x0_),
                static_cast<float>(dx_), y_.size()};
    }

  private:
    void locate(double x, std::size_t &index, double &t) const;

    double x0_ = 0.0;
    double dx_ = 1.0;
    std::vector<double> y_;
    std::vector<double> m_; ///< second derivatives at the knots

    std::vector<float> yF_; ///< cached float mirror of y_ (viewF)
    std::vector<float> mF_; ///< cached float mirror of m_ (viewF)
};

} // namespace mdbench

#endif // MDBENCH_FORCEFIELD_SPLINE_H
