/**
 * @file
 * Natural cubic spline over a uniform grid, used by the tabulated EAM
 * potential (LAMMPS funcfl-style interpolation).
 */

#ifndef MDBENCH_FORCEFIELD_SPLINE_H
#define MDBENCH_FORCEFIELD_SPLINE_H

#include <cstddef>
#include <vector>

namespace mdbench {

/**
 * Interpolates a function sampled at x_i = x0 + i * dx, providing value
 * and first derivative. Evaluation clamps to the tabulated range.
 */
class CubicSpline
{
  public:
    CubicSpline() = default;

    /** Build from samples @p y at spacing @p dx starting at @p x0. */
    CubicSpline(double x0, double dx, std::vector<double> y);

    /** Interpolated value at @p x. */
    double value(double x) const;

    /** Interpolated first derivative at @p x. */
    double derivative(double x) const;

    /** Value and derivative in one lookup. */
    void eval(double x, double &value, double &derivative) const;

    /** Upper end of the tabulated range. */
    double xMax() const { return x0_ + dx_ * (y_.empty() ? 0 : y_.size() - 1); }

    /**
     * Raw table view for vectorized evaluation (the SIMD EAM kernel
     * gathers knots directly). Pointers are borrowed: valid until the
     * spline is modified or destroyed.
     */
    struct View
    {
        const double *y;  ///< knot values
        const double *m;  ///< knot second derivatives
        double x0;        ///< first knot abscissa
        double dx;        ///< knot spacing
        std::size_t n;    ///< knot count
    };

    View
    view() const
    {
        return {y_.data(), m_.data(), x0_, dx_, y_.size()};
    }

  private:
    void locate(double x, std::size_t &index, double &t) const;

    double x0_ = 0.0;
    double dx_ = 1.0;
    std::vector<double> y_;
    std::vector<double> m_; ///< second derivatives at the knots
};

} // namespace mdbench

#endif // MDBENCH_FORCEFIELD_SPLINE_H
