/**
 * @file
 * Embedded Atom Method many-body potential (LAMMPS `pair_style eam`),
 * the force field of the EAM copper workload.
 *
 * The potential is defined by three tabulated functions interpolated with
 * cubic splines, exactly like LAMMPS funcfl tables:
 *   - phi(r):  pairwise repulsion,
 *   - rho(r):  electron-density contribution of a neighbor,
 *   - F(rhoBar): embedding energy of the host density.
 *
 * The paper's experiment uses a proprietary-format Cu table; we generate
 * an equivalent synthetic copper-like table (makeSyntheticCopper) from
 * smooth analytic forms, which exercises the identical two-pass kernel
 * with per-atom density communication.
 */

#ifndef MDBENCH_FORCEFIELD_PAIR_EAM_H
#define MDBENCH_FORCEFIELD_PAIR_EAM_H

#include <type_traits>
#include <vector>

#include "forcefield/spline.h"
#include "md/styles.h"
#include "md/vec3.h"
#include "md/xpack.h"
#include "util/precision.h"
#include "util/thread_pool.h"

namespace mdbench {

/** The three tabulated functions defining a single-element EAM potential. */
struct EamTables
{
    CubicSpline phi;      ///< pair potential phi(r) [energy]
    CubicSpline rho;      ///< density contribution rho(r)
    CubicSpline embed;    ///< embedding energy F(rhoBar)
    double cutoff = 0.0;  ///< radial cutoff of phi and rho

    /**
     * Synthetic copper-like tables: Morse-style pair term, exponentially
     * decaying density, and a Finnis-Sinclair square-root embedding term,
     * tabulated on @p points samples out to @p cutoff Angstrom.
     */
    static EamTables makeSyntheticCopper(double cutoff = 4.95,
                                         int points = 1000);
};

/**
 * Two-pass EAM evaluation over a half neighbor list.
 *
 * Pass 1 accumulates host densities (ghost contributions are folded back
 * to owners through the comm layer); pass 2 computes forces using the
 * embedding derivatives (communicated owner -> ghost).
 */
class PairEAM : public PairStyle
{
  public:
    explicit PairEAM(EamTables tables);

    std::string name() const override { return "eam"; }
    double cutoff() const override { return tables_.cutoff; }
    void compute(Simulation &sim, const NeighborList &list) override;

    /** Host density of owned atom @p i after the last compute. */
    double hostDensity(std::size_t i) const { return rhoBar_[i]; }

  private:
    EamTables tables_;
    std::vector<double> rhoBar_; ///< per-atom host density
    std::vector<double> fp_;     ///< per-atom embedding derivative F'(rho)

    /** Per-slice j-side reduction buffers (half lists, Newton on). */
    ReduceScratch<double> rhoScratch_;
    ReduceScratch<Vec3> fscratch_;

    /**
     * Positions repacked as 4-element records (md/xpack.h, pad atom
     * included) in the active tier's `real` type, refilled each
     * compute; feeds loadXyzw so the radial passes load j positions
     * without hardware gathers. The fourth lane is 0 in pass 1 and
     * F'(rho_j) in pass 2, which folds the fpJ gather into the same
     * transpose load.
     */
    XPack<double> xpackD_;
    XPack<float> xpackF_;

    template <typename T>
    XPack<T> &
    xpack()
    {
        if constexpr (std::is_same_v<T, double>)
            return xpackD_;
        else
            return xpackF_;
    }

    /** The scalar two-pass kernel (the oracle for the SIMD path). */
    void computeImpl(Simulation &sim, const NeighborList &list);

    /**
     * SIMD two-pass kernel over the padded packing (DESIGN.md §12-13):
     * both radial passes gather-evaluate the cubic-spline tables W
     * lanes at a time. fp_ is oversized by the pad slot so sentinel
     * gathers stay in bounds. Mirrors computeImpl's operation order,
     * so at W = 1 on a no-FMA build the double-tier instantiation
     * reproduces the scalar kernel's results.
     *
     * P is the precision policy (util/precision.h): the radial passes
     * — the O(N * neighbors) work — run in P::real lanes over float
     * spline-knot mirrors; the per-atom O(N) F-embedding pass stays in
     * double at every tier (W-wide with a scalar tail on the double
     * tier, plain scalar on float tiers), so rhoBar_ and fp_ always
     * hold double. The double tier accumulates energy/virial in
     * slice-long lane stripes (the bitwise-legacy order); float tiers
     * flush per-row partial sums into P::acc scalars. Host densities
     * and per-atom forces always accumulate in the double scratch
     * arrays.
     */
    template <typename P, int W>
    void computeSimdImpl(Simulation &sim, const NeighborList &list);

    /** Width dispatch: packed-list widths take the SIMD kernel. */
    template <typename P>
    void dispatchWidth(Simulation &sim, const NeighborList &list);
};

} // namespace mdbench

#endif // MDBENCH_FORCEFIELD_PAIR_EAM_H
